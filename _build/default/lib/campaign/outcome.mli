(** Experiment-outcome classification.

    The paper's campaigns (Section II-D) distinguish eight experiment
    outcome types, two of which — "No Effect" and "Detected & Corrected"
    — are benign (no externally visible deviation); the other six are
    coalesced into "Failure".  This module defines the same taxonomy for
    our machine. *)

type t =
  | No_effect
      (** Run indistinguishable from the golden run. *)
  | Corrected
      (** Output correct, but a fault-tolerance mechanism reported a
          detected-and-corrected event: benign. *)
  | Sdc
      (** Silent data corruption: run terminated normally but the serial
          output differs from the golden run. *)
  | Output_truncated
      (** Terminated normally with a proper prefix of the golden output —
          separated from {!Sdc} because it usually indicates a skipped
          computation rather than corrupted data. *)
  | Detected_fail_stop
      (** A mechanism detected an unrecoverable error and stopped the
          machine through the panic port. *)
  | Trap_memory
      (** CPU exception: unmapped/misaligned access or ROM write. *)
  | Trap_cpu
      (** CPU exception: bad jump target or division by zero. *)
  | Timeout
      (** Watchdog expired (e.g. a corrupted loop bound). *)

val all : t list
(** All outcomes, in the order above. *)

val to_string : t -> string
(** Stable identifier, e.g. ["sdc"]; inverse of {!of_string}. *)

val of_string : string -> t option

val pp : Format.formatter -> t -> unit

val is_benign : t -> bool
(** [No_effect] and [Corrected] — "can be interpreted as a benign
    behavior that has no visible effect from the outside". *)

val is_failure : t -> bool
(** Negation of {!is_benign}; the paper's coalesced "Failure" type. *)

val classify :
  golden_output:string ->
  golden_event_count:int ->
  stop:Machine.stop_reason ->
  output:string ->
  event_count:int ->
  t
(** Classify one finished experiment run against its golden run. *)
