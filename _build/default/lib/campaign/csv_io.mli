(** Persistence of campaign results as CSV, so long campaigns can be run
    once and re-analysed offline (FAIL* stores results in a database; a
    flat file suffices here). *)

val save : string -> Scan.t -> unit
(** [save path scan] writes a header block and one row per experiment. *)

val load : string -> (Scan.t, string) result
(** Inverse of {!save}. *)

val to_string : Scan.t -> string
(** The serialised form, without touching the filesystem. *)

val of_string : string -> (Scan.t, string) result
