(** FIT-rate arithmetic (Section III-A of the paper).

    The FIT (Failures In Time) rate counts expected failures per 10⁹
    device-hours.  DRAM soft-error studies report FIT per Mbit; the paper
    averages three published rates and converts to a per-bit, per-
    nanosecond fault rate [g], then to the Poisson parameter
    λ = g·Δt·Δm of a benchmark run. *)

type t = private float
(** A rate in FIT per Mbit (failures per 10⁹ hours per 2²⁰... the paper
    uses Mbit = 10⁶ bit, which we follow). *)

val of_fit_per_mbit : float -> t
(** Wrap a published FIT/Mbit figure.

    @raise Invalid_argument on negative rates. *)

val to_float : t -> float
(** The underlying FIT/Mbit number. *)

val published_rates : t list
(** The three DRAM study rates cited by the paper:
    0.061 (Sridharan & Liberty), 0.066 (Hwang et al.) and
    0.044 FIT/Mbit (the 2013 large-scale study). *)

val mean_published : t
(** Their arithmetic mean, 0.057 FIT/Mbit, as used in the paper. *)

val per_bit_per_ns : t -> float
(** [per_bit_per_ns r] is the fault rate g in 1/(ns·bit):
    g = r / (10⁹ h · 3600 s/h · 10⁹ ns/s · 10⁶ bit).
    For 0.057 FIT/Mbit this is ≈ 1.58·10⁻²⁹, which the paper rounds to
    1.6·10⁻²⁹. *)

val lambda : t -> cycles:int -> ns_per_cycle:float -> bits:int -> float
(** [lambda r ~cycles ~ns_per_cycle ~bits] is the Poisson parameter
    λ = g · (cycles · ns_per_cycle) · bits of a benchmark run occupying
    [bits] bits of RAM for [cycles] CPU cycles. *)
