let log_choose n k =
  if k < 0 || n < 0 || k > n then invalid_arg "Binomial.log_choose: domain";
  Special.log_factorial n -. Special.log_factorial k
  -. Special.log_factorial (n - k)

let check n p =
  if n < 0 then invalid_arg "Binomial: n must be non-negative";
  if p < 0.0 || p > 1.0 then invalid_arg "Binomial: p outside [0,1]"

let pmf ~n ~p k =
  check n p;
  if k < 0 || k > n then 0.0
  else if p = 0.0 then (if k = 0 then 1.0 else 0.0)
  else if p = 1.0 then (if k = n then 1.0 else 0.0)
  else
    exp
      (log_choose n k
      +. (float_of_int k *. log p)
      +. (float_of_int (n - k) *. log (1.0 -. p)))

let cdf ~n ~p k =
  check n p;
  if k < 0 then 0.0
  else if k >= n then 1.0
  else
    (* P(X <= k) = I_{1-p}(n-k, k+1) *)
    Special.regularized_beta (1.0 -. p)
      ~a:(float_of_int (n - k))
      ~b:(float_of_int (k + 1))

let mean ~n ~p = float_of_int n *. p
let variance ~n ~p = float_of_int n *. p *. (1.0 -. p)

let sample rng ~n ~p =
  check n p;
  let count = ref 0 in
  for _ = 1 to n do
    if Prng.float rng 1.0 < p then incr count
  done;
  !count
