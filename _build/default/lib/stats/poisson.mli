(** The Poisson distribution, used by the paper (Section III-A, Table I)
    to argue that the probability of two or more independent faults
    hitting one benchmark run is negligible, so single-fault injection
    suffices. *)

val pmf : lambda:float -> int -> float
(** [pmf ~lambda k] is P_λ(k) = λᵏ e^{−λ} / k!, computed in log space so
    extreme parameters (λ ≈ 10⁻¹⁴ as in Table I) stay accurate.

    @raise Invalid_argument if [lambda < 0.] or [k < 0]. *)

val cdf : lambda:float -> int -> float
(** [cdf ~lambda k] is P(X ≤ k) via the regularised incomplete gamma
    function Q(k+1, λ). *)

val survival : lambda:float -> int -> float
(** [survival ~lambda k] is P(X > k) = 1 − cdf. *)

val mean : lambda:float -> float
(** λ. *)

val variance : lambda:float -> float
(** λ. *)

val sample : Prng.t -> lambda:float -> int
(** Draw a Poisson variate (Knuth's product method for small λ, the PTRS
    transformed-rejection method is unnecessary at the λ used here and a
    simple inversion fallback handles λ up to ~700). *)
