(** Confidence intervals for binomial proportions.

    Sampling-based FI campaigns estimate P(Failure | 1 fault) from [fails]
    successes in [trials] Bernoulli draws; these intervals quantify the
    statistical error of such estimates (the paper defers the sample-size
    question to the literature, but a credible FI tool must report it). *)

type interval = { lower : float; upper : float }
(** A two-sided interval, [0 <= lower <= upper <= 1]. *)

val pp_interval : Format.formatter -> interval -> unit
(** Prints as ["[l, u]"] with four decimal places. *)

val wald : fails:int -> trials:int -> confidence:float -> interval
(** Normal-approximation (Wald) interval; simple but unreliable near the
    boundaries — provided for comparison.

    @raise Invalid_argument if [trials <= 0], [fails] outside
    [\[0, trials\]] or [confidence] outside (0, 1). *)

val wilson : fails:int -> trials:int -> confidence:float -> interval
(** Wilson score interval; the recommended default. *)

val clopper_pearson : fails:int -> trials:int -> confidence:float -> interval
(** Exact (conservative) Clopper–Pearson interval via the incomplete beta
    function. *)

val sample_size :
  half_width:float -> confidence:float -> worst_case_p:float -> int
(** [sample_size ~half_width ~confidence ~worst_case_p] is the number of
    samples needed so that a Wald-style interval at [confidence] has at
    most [half_width] half-width when the true proportion is
    [worst_case_p] (use 0.5 when unknown). *)
