(** Streaming summary statistics (Welford's online algorithm), used by the
    benchmark harness to aggregate repeated measurements. *)

type t
(** Mutable accumulator. *)

val create : unit -> t
(** An empty accumulator. *)

val add : t -> float -> unit
(** Feed one observation. *)

val count : t -> int
(** Number of observations so far. *)

val mean : t -> float
(** Arithmetic mean; 0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 with fewer than two observations. *)

val stddev : t -> float
(** Square root of [variance]. *)

val min : t -> float
(** Smallest observation; [nan] when empty. *)

val max : t -> float
(** Largest observation; [nan] when empty. *)

val of_array : float array -> t
(** Accumulator over a whole array. *)
