(** Special mathematical functions needed by the probability modules.

    Implemented from standard numerical recipes (Lanczos approximation for
    the log-gamma function; series and continued-fraction expansions for
    the regularised incomplete gamma and beta functions). *)

val log_gamma : float -> float
(** [log_gamma x] is ln Γ(x) for [x > 0]. *)

val log_factorial : int -> float
(** [log_factorial n] is ln (n!), exact table for small [n], log-gamma
    otherwise.

    @raise Invalid_argument if [n < 0]. *)

val regularized_gamma_p : float -> float -> float
(** [regularized_gamma_p a x] is P(a, x) = γ(a, x)/Γ(a), the regularised
    lower incomplete gamma function, for [a > 0] and [x >= 0]. *)

val regularized_gamma_q : float -> float -> float
(** [regularized_gamma_q a x] is Q(a, x) = 1 − P(a, x). *)

val regularized_beta : float -> a:float -> b:float -> float
(** [regularized_beta x ~a ~b] is I_x(a, b), the regularised incomplete
    beta function, for [0 <= x <= 1], [a > 0], [b > 0]. *)

val erf : float -> float
(** Error function, via the incomplete gamma function. *)

val inverse_normal_cdf : float -> float
(** [inverse_normal_cdf p] is the quantile of the standard normal
    distribution (Acklam's rational approximation, |relative error|
    < 1.15e-9) for [0 < p < 1].

    @raise Invalid_argument outside (0, 1). *)
