type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

(* splitmix64: expands a 64-bit seed into a well-mixed stream; used only
   for state initialisation, per the xoshiro authors' recommendation. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref seed in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** next *)
let next_int64 g =
  let result = Int64.mul (rotl (Int64.mul g.s1 5L) 7) 9L in
  let t = Int64.shift_left g.s1 17 in
  g.s2 <- Int64.logxor g.s2 g.s0;
  g.s3 <- Int64.logxor g.s3 g.s1;
  g.s1 <- Int64.logxor g.s1 g.s2;
  g.s0 <- Int64.logxor g.s0 g.s3;
  g.s2 <- Int64.logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g = create ~seed:(next_int64 g)

let bits30 g = Int64.to_int (Int64.shift_right_logical (next_int64 g) 34)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let mask62 = (1 lsl 62) - 1 in
  let rec draw () =
    let raw = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) land mask62 in
    let value = raw mod bound in
    if raw - value + (bound - 1) >= 0 then value else draw ()
  in
  draw ()

let int64 g bound =
  if Int64.compare bound 0L <= 0 then
    invalid_arg "Prng.int64: bound must be positive";
  let rec draw () =
    let raw = Int64.shift_right_logical (next_int64 g) 1 in
    let value = Int64.rem raw bound in
    if Int64.compare (Int64.sub raw value) (Int64.sub Int64.max_int (Int64.pred bound)) <= 0
    then value
    else draw ()
  in
  draw ()

let float g bound =
  (* 53 uniform mantissa bits, as in the xoshiro reference code. *)
  let raw = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  raw *. (1.0 /. 9007199254740992.0) *. bound

let bool g = Int64.compare (Int64.logand (next_int64 g) 1L) 0L <> 0

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int g (Array.length a))
