lib/stats/binomial.ml: Prng Special
