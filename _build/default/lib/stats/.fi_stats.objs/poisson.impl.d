lib/stats/poisson.ml: Prng Special
