lib/stats/fit_rate.mli:
