lib/stats/special.mli:
