lib/stats/confidence.ml: Float Format Special
