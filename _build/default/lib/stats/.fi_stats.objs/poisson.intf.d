lib/stats/poisson.mli: Prng
