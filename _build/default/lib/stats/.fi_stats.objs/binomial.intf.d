lib/stats/binomial.mli: Prng
