lib/stats/prng.mli:
