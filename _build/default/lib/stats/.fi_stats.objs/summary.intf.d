lib/stats/summary.mli:
