lib/stats/fit_rate.ml: List
