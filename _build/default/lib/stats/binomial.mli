(** The binomial distribution.  The paper notes (Section III-A) that the
    number of faults hitting a run is binomial and is well approximated
    by the Poisson distribution at realistic soft-error rates; the test
    suite verifies that approximation numerically. *)

val log_choose : int -> int -> float
(** [log_choose n k] is ln (n choose k).

    @raise Invalid_argument if [k < 0], [n < 0] or [k > n]. *)

val pmf : n:int -> p:float -> int -> float
(** [pmf ~n ~p k] is P(X = k) for X ~ B(n, p), computed in log space. *)

val cdf : n:int -> p:float -> int -> float
(** [cdf ~n ~p k] is P(X ≤ k), via the regularised incomplete beta
    function. *)

val mean : n:int -> p:float -> float
(** n·p. *)

val variance : n:int -> p:float -> float
(** n·p·(1−p). *)

val sample : Prng.t -> n:int -> p:float -> int
(** Draw a binomial variate by counting Bernoulli successes ([n] draws;
    adequate for the moderate [n] used in tests). *)
