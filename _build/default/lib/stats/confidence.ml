type interval = { lower : float; upper : float }

let pp_interval ppf { lower; upper } =
  Format.fprintf ppf "[%.4f, %.4f]" lower upper

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

let check ~fails ~trials ~confidence =
  if trials <= 0 then invalid_arg "Confidence: trials must be positive";
  if fails < 0 || fails > trials then
    invalid_arg "Confidence: fails outside [0, trials]";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Confidence: confidence outside (0,1)"

let z_of ~confidence =
  Special.inverse_normal_cdf (1.0 -. ((1.0 -. confidence) /. 2.0))

let wald ~fails ~trials ~confidence =
  check ~fails ~trials ~confidence;
  let n = float_of_int trials in
  let p = float_of_int fails /. n in
  let z = z_of ~confidence in
  let half = z *. sqrt (p *. (1.0 -. p) /. n) in
  { lower = clamp01 (p -. half); upper = clamp01 (p +. half) }

let wilson ~fails ~trials ~confidence =
  check ~fails ~trials ~confidence;
  let n = float_of_int trials in
  let p = float_of_int fails /. n in
  let z = z_of ~confidence in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let centre = p +. (z2 /. (2.0 *. n)) in
  let half = z *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n))) in
  {
    lower = clamp01 ((centre -. half) /. denom);
    upper = clamp01 ((centre +. half) /. denom);
  }

let clopper_pearson ~fails ~trials ~confidence =
  check ~fails ~trials ~confidence;
  let alpha = 1.0 -. confidence in
  let n = trials in
  let k = fails in
  (* Invert the beta CDF by bisection on the regularised incomplete beta. *)
  let beta_quantile p ~a ~b =
    let rec bisect lo hi iter =
      if iter = 0 then (lo +. hi) /. 2.0
      else
        let mid = (lo +. hi) /. 2.0 in
        if Special.regularized_beta mid ~a ~b < p then bisect mid hi (iter - 1)
        else bisect lo mid (iter - 1)
    in
    bisect 0.0 1.0 80
  in
  let lower =
    if k = 0 then 0.0
    else
      beta_quantile (alpha /. 2.0) ~a:(float_of_int k)
        ~b:(float_of_int (n - k + 1))
  in
  let upper =
    if k = n then 1.0
    else
      beta_quantile
        (1.0 -. (alpha /. 2.0))
        ~a:(float_of_int (k + 1))
        ~b:(float_of_int (n - k))
  in
  { lower; upper }

let sample_size ~half_width ~confidence ~worst_case_p =
  if half_width <= 0.0 then
    invalid_arg "Confidence.sample_size: half_width must be positive";
  if worst_case_p < 0.0 || worst_case_p > 1.0 then
    invalid_arg "Confidence.sample_size: worst_case_p outside [0,1]";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Confidence.sample_size: confidence outside (0,1)";
  let z = z_of ~confidence in
  let n = z *. z *. worst_case_p *. (1.0 -. worst_case_p) /. (half_width *. half_width) in
  int_of_float (Float.ceil n)
