(** Deterministic pseudo-random number generation.

    Fault-injection campaigns must be exactly reproducible (Section II-C of
    the paper), so all randomness in this repository flows through this
    module rather than [Stdlib.Random].  The generator is xoshiro256**
    seeded via splitmix64, both implemented from the public-domain
    reference algorithms. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] builds a generator whose entire stream is a pure
    function of [seed] (expanded with splitmix64). *)

val copy : t -> t
(** [copy g] is an independent generator that will replay exactly the
    stream [g] would have produced from its current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator seeded from it;
    streams of parent and child are statistically independent. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniformly random bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  [bound] must be positive;
    rejection sampling removes modulo bias.

    @raise Invalid_argument if [bound <= 0]. *)

val int64 : t -> int64 -> int64
(** [int64 g bound] is uniform in [\[0L, bound)] for positive [bound].

    @raise Invalid_argument if [bound <= 0L]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)], with 53 bits of
    precision. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.

    @raise Invalid_argument on an empty array. *)
