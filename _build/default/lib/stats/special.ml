(* Lanczos approximation, g = 7, n = 9 coefficients. *)
let lanczos =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x < 0.5 then
    (* Reflection formula keeps the Lanczos series in its domain. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else
    let x = x -. 1.0 in
    let acc = ref lanczos.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc

let factorial_table =
  let table = Array.make 171 1.0 in
  for n = 1 to 170 do
    table.(n) <- table.(n - 1) *. float_of_int n
  done;
  table

let log_factorial n =
  if n < 0 then invalid_arg "Special.log_factorial: negative argument";
  if n <= 170 then log factorial_table.(n)
  else log_gamma (float_of_int n +. 1.0)

let max_iterations = 500
let epsilon = 3.0e-12
let tiny = 1.0e-300

(* Series expansion of P(a, x), converges quickly for x < a + 1. *)
let gamma_p_series a x =
  let ap = ref a in
  let sum = ref (1.0 /. a) in
  let delta = ref !sum in
  let finished = ref false in
  let iter = ref 0 in
  while (not !finished) && !iter < max_iterations do
    incr iter;
    ap := !ap +. 1.0;
    delta := !delta *. x /. !ap;
    sum := !sum +. !delta;
    if Float.abs !delta < Float.abs !sum *. epsilon then finished := true
  done;
  !sum *. exp ((a *. log x) -. x -. log_gamma a)

(* Continued fraction for Q(a, x), converges quickly for x >= a + 1. *)
let gamma_q_cf a x =
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. tiny) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  let finished = ref false in
  let i = ref 1 in
  while (not !finished) && !i < max_iterations do
    let an = -.float_of_int !i *. (float_of_int !i -. a) in
    b := !b +. 2.0;
    d := (an *. !d) +. !b;
    if Float.abs !d < tiny then d := tiny;
    c := !b +. (an /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1.0 /. !d;
    let delta = !d *. !c in
    h := !h *. delta;
    if Float.abs (delta -. 1.0) < epsilon then finished := true;
    incr i
  done;
  exp ((a *. log x) -. x -. log_gamma a) *. !h

let regularized_gamma_p a x =
  if a <= 0.0 || x < 0.0 then
    invalid_arg "Special.regularized_gamma_p: domain error";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then gamma_p_series a x
  else 1.0 -. gamma_q_cf a x

let regularized_gamma_q a x = 1.0 -. regularized_gamma_p a x

(* Continued fraction for the incomplete beta function (Lentz's method). *)
let beta_cf x ~a ~b =
  let qab = a +. b in
  let qap = a +. 1.0 in
  let qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if Float.abs !d < tiny then d := tiny;
  d := 1.0 /. !d;
  let h = ref !d in
  let m = ref 1 in
  let finished = ref false in
  while (not !finished) && !m < max_iterations do
    let mf = float_of_int !m in
    let m2 = 2.0 *. mf in
    let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1.0 +. (aa *. !d);
    if Float.abs !d < tiny then d := tiny;
    c := 1.0 +. (aa /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1.0 /. !d;
    h := !h *. !d *. !c;
    let aa = -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2)) in
    d := 1.0 +. (aa *. !d);
    if Float.abs !d < tiny then d := tiny;
    c := 1.0 +. (aa /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1.0 /. !d;
    let delta = !d *. !c in
    h := !h *. delta;
    if Float.abs (delta -. 1.0) < epsilon then finished := true;
    incr m
  done;
  !h

let regularized_beta x ~a ~b =
  if x < 0.0 || x > 1.0 then invalid_arg "Special.regularized_beta: x outside [0,1]";
  if a <= 0.0 || b <= 0.0 then invalid_arg "Special.regularized_beta: a, b must be positive";
  if x = 0.0 then 0.0
  else if x = 1.0 then 1.0
  else
    let front =
      exp
        (log_gamma (a +. b) -. log_gamma a -. log_gamma b
        +. (a *. log x)
        +. (b *. log (1.0 -. x)))
    in
    if x < (a +. 1.0) /. (a +. b +. 2.0) then front *. beta_cf x ~a ~b /. a
    else 1.0 -. (front *. beta_cf (1.0 -. x) ~a:b ~b:a /. b)

let erf x =
  if x >= 0.0 then regularized_gamma_p 0.5 (x *. x)
  else -.regularized_gamma_p 0.5 (x *. x)

(* Acklam's inverse normal CDF approximation. *)
let inverse_normal_cdf p =
  if p <= 0.0 || p >= 1.0 then
    invalid_arg "Special.inverse_normal_cdf: p outside (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let p_high = 1.0 -. p_low in
  if p < p_low then
    let q = sqrt (-2.0 *. log p) in
    (((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
    /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  else if p <= p_high then
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5))
    *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.0)
  else
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    -.((((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
       /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0))
