let check_lambda lambda =
  if lambda < 0.0 then invalid_arg "Poisson: lambda must be non-negative"

let pmf ~lambda k =
  check_lambda lambda;
  if k < 0 then invalid_arg "Poisson.pmf: k must be non-negative";
  if lambda = 0.0 then (if k = 0 then 1.0 else 0.0)
  else
    exp ((float_of_int k *. log lambda) -. lambda -. Special.log_factorial k)

let cdf ~lambda k =
  check_lambda lambda;
  if k < 0 then 0.0
  else if lambda = 0.0 then 1.0
  else Special.regularized_gamma_q (float_of_int (k + 1)) lambda

let survival ~lambda k = 1.0 -. cdf ~lambda k
let mean ~lambda = lambda
let variance ~lambda = lambda

let sample rng ~lambda =
  check_lambda lambda;
  if lambda = 0.0 then 0
  else if lambda < 30.0 then begin
    (* Knuth: multiply uniforms until the product drops below e^-λ. *)
    let limit = exp (-.lambda) in
    let k = ref 0 in
    let p = ref 1.0 in
    let continue = ref true in
    while !continue do
      p := !p *. Prng.float rng 1.0;
      if !p > limit then incr k else continue := false
    done;
    !k
  end
  else begin
    (* Inversion by sequential search on the CDF; fine for moderate λ. *)
    let u = Prng.float rng 1.0 in
    let k = ref 0 in
    let acc = ref (pmf ~lambda 0) in
    while !acc < u && !k < 100_000 do
      incr k;
      acc := !acc +. pmf ~lambda !k
    done;
    !k
  end
