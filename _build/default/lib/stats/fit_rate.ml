type t = float

let of_fit_per_mbit r =
  if r < 0.0 then invalid_arg "Fit_rate.of_fit_per_mbit: negative rate";
  r

let to_float r = r

let published_rates = [ 0.061; 0.066; 0.044 ]

let mean_published =
  let sum = List.fold_left ( +. ) 0.0 published_rates in
  sum /. float_of_int (List.length published_rates)

(* 10^9 hours in ns, times 10^6 bits per Mbit. *)
let fit_denominator = 1e9 *. 3600.0 *. 1e9 *. 1e6

let per_bit_per_ns r = r /. fit_denominator

let lambda r ~cycles ~ns_per_cycle ~bits =
  if cycles < 0 || bits < 0 then invalid_arg "Fit_rate.lambda: negative size";
  per_bit_per_ns r *. float_of_int cycles *. ns_per_cycle *. float_of_int bits
