(* The benchmark harness: regenerates every table and figure of the paper
   (see DESIGN.md's experiment index) and runs Bechamel micro-benchmarks
   of the substrate.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- table1 figure3 perf

   Campaign results are cached as CSV under _artifacts/ so re-running
   reports is cheap; delete the directory to force fresh campaigns. *)

let cache_dir = "_artifacts"

let ensure_cache_dir () =
  if not (Sys.file_exists cache_dir) then Sys.mkdir cache_dir 0o755

let progress label ~done_ ~total ~tally =
  if done_ = total || done_ mod 500 = 0 then begin
    Printf.eprintf "\r[campaign %s] %d/%d classes (%d failures)" label done_
      total
      (Outcome.tally_failures tally);
    if done_ = total then Printf.eprintf "\n";
    flush stderr
  end

let section title =
  Printf.printf "\n%s\n%s\n" (String.make 72 '=') title;
  Printf.printf "%s\n" (String.make 72 '=')

(* ------------------------------------------------------------------ *)
(* Campaign-backed data (cached)                                      *)
(* ------------------------------------------------------------------ *)

(* The Figure-2 pairs as one campaign matrix: cached cells load from
   their CSV, every missing cell runs through a single shared
   Engine.run_matrix (catalogue-journaled under _artifacts/, so an
   interrupted regeneration resumes shard-exact). *)
let paper_scans =
  lazy
    (ensure_cache_dir ();
     let policy = Spec.make_policy ~resume:true ~catalogue:cache_dir () in
     let cells =
       List.concat_map
         (fun (name, baseline, hardened) ->
           [ (name, "baseline", baseline); (name, "sum+dmr", hardened) ])
         Suite.paper_pairs
     in
     let cache_path name variant =
       Filename.concat cache_dir (Printf.sprintf "%s-%s.csv" name variant)
     in
     let cached =
       List.map
         (fun (name, variant, _) ->
           if Sys.file_exists (cache_path name variant) then
             match Csv_io.load (cache_path name variant) with
             | Ok scan -> Some scan
             | Error _ -> None
           else None)
         cells
     in
     let missing =
       List.filter_map
         (fun ((name, variant, build), c) ->
           if c = None then
             Some (Spec.memory ~variant ~policy ~benchmark:name build)
           else None)
         (List.combine cells cached)
     in
     let fresh =
       if missing = [] then []
       else
         Engine.run_matrix ~jobs:(Pool.default_jobs ())
           ~progress:(fun spec -> progress (Spec.label spec))
           missing
     in
     let fresh = ref fresh in
     let scans =
       List.map2
         (fun (name, variant, _) c ->
           match c with
           | Some scan -> scan
           | None ->
               let scan = List.hd !fresh in
               fresh := List.tl !fresh;
               (try Csv_io.save (cache_path name variant) scan
                with Sys_error _ -> () (* cache is best-effort *));
               scan)
         cells cached
     in
     let rec pair_up = function
       | (name, _, _) :: _ :: rest, sb :: sh :: scans ->
           (name, sb, sh) :: pair_up (rest, scans)
       | _ -> []
     in
     pair_up (cells, scans))

let extra_scan ~name ~variant build =
  ensure_cache_dir ();
  let path = Filename.concat cache_dir (Printf.sprintf "%s-%s.csv" name variant) in
  if Sys.file_exists path then
    match Csv_io.load path with
    | Ok scan -> scan
    | Error _ ->
        let scan = Scan.pruned ~variant (Golden.run (build ())) in
        Csv_io.save path scan;
        scan
  else begin
    let scan =
      Scan.pruned ~variant
        ~progress:(progress (name ^ "/" ^ variant))
        (Golden.run (build ()))
    in
    Csv_io.save path scan;
    scan
  end

(* ------------------------------------------------------------------ *)
(* Artifacts                                                          *)
(* ------------------------------------------------------------------ *)

let run_table1 () =
  section "T1 | Table I";
  print_string (Figures.table1 ())

let run_figure1 () =
  section "F1 | Figure 1: def/use pruning";
  print_string (Figures.figure1 ())

let run_figure3 () =
  section "F3 | Figure 3 / Section IV: the dilution delusion";
  print_string (Figures.figure3 ())

let run_figure2 () =
  section "F2 | Figure 2: bin_sem2 and sync2, baseline vs SUM+DMR";
  print_string (Figures.figure2 (Lazy.force paper_scans))

let run_pruning () =
  section "S3C | Section III-C: pruning effectiveness";
  let goldens =
    List.map
      (fun (e : Suite.entry) ->
        ( Printf.sprintf "%s/%s" e.Suite.benchmark
            (Suite.variant_name e.Suite.variant),
          Golden.run (e.Suite.build ()) ))
      (List.filter (fun e -> e.Suite.variant <> Suite.Tmr) Suite.all)
  in
  print_string (Figures.pruning_stats (("hi", Golden.run (Hi.program ())) :: goldens))

let run_pitfall2 () =
  section "P2 | Pitfall 2: biased sampling";
  (* Ground truth from the cached bin_sem2 baseline campaign. *)
  let scans = Lazy.force paper_scans in
  let _, sb, _ = List.hd scans in
  let golden = Golden.run (Bin_sem2.baseline ()) in
  print_string (Figures.pitfall2 sb golden);
  print_string "\nAnd maximally on the Hi program (every def/use class fails):\n";
  let hi_g = Golden.run (Hi.program ()) in
  print_string (Figures.pitfall2 ~samples:1024 (Scan.pruned hi_g) hi_g)

let run_pitfall3 () =
  section "P3 | Pitfall 3 (corollary 2): extrapolation";
  let scans = Lazy.force paper_scans in
  let entries =
    List.concat_map
      (fun (name, sb, sh) ->
        let baseline_golden, hardened_golden =
          match name with
          | "bin_sem2" ->
              (Golden.run (Bin_sem2.baseline ()), Golden.run (Bin_sem2.sum_dmr ()))
          | _ -> (Golden.run (Sync2.baseline ()), Golden.run (Sync2.sum_dmr ()))
        in
        [
          (name ^ "/baseline", sb, baseline_golden);
          (name ^ "/sum+dmr", sh, hardened_golden);
        ])
      scans
  in
  print_string (Figures.pitfall3_extrapolation entries)

let run_figure2_sampled () =
  section "F2s | Figure 2(e) via sampling (common practice, done right)";
  print_string (Figures.figure2_sampled (Lazy.force paper_scans))

let run_ratios () =
  section "R | Comparison ratios (Section V)";
  List.iter
    (fun (name, sb, sh) ->
      let p3 = Pitfalls.analyze_pitfall3 ~baseline:sb ~hardened:sh in
      Format.printf "%-10s %a@." name Pitfalls.pp_pitfall3 p3;
      Format.printf "%-10s MWTF ratio (hardened/baseline): %.3f@." ""
        (Mwtf.relative ~baseline:sb ~hardened:sh ()))
    (Lazy.force paper_scans)

let run_ablation () =
  section "X2 | Hardening ablation: baseline vs SUM+DMR vs TMR";
  let entries =
    List.concat_map
      (fun (benchmark, builders) ->
        List.map
          (fun (variant, build) ->
            ( Printf.sprintf "%s/%s" benchmark variant,
              extra_scan ~name:benchmark ~variant build ))
          builders)
      [
        ( "bin_sem2",
          [ ("baseline", fun () -> Bin_sem2.baseline ());
            ("sum+dmr", fun () -> Bin_sem2.sum_dmr ());
            ("tmr", fun () -> Bin_sem2.tmr ()) ] );
        ( "mutex1",
          [ ("baseline", fun () -> Mutex1.baseline ());
            ("sum+dmr", fun () -> Mutex1.sum_dmr ());
            ("tmr", fun () -> Mutex1.tmr ()) ] );
        ( "mbox1",
          [ ("baseline", fun () -> Mbox1.baseline ());
            ("sum+dmr", fun () -> Mbox1.sum_dmr ());
            ("tmr", fun () -> Mbox1.tmr ()) ] );
        ( "flag1",
          [ ("baseline", fun () -> Flag1.baseline ());
            ("sum+dmr", fun () -> Flag1.sum_dmr ());
            ("tmr", fun () -> Flag1.tmr ()) ] );
      ]
  in
  print_string (Figures.ablation entries);
  (* The objective verdict per benchmark and mechanism. *)
  let find name = List.assoc name entries in
  List.iter
    (fun benchmark ->
      let base = find (benchmark ^ "/baseline") in
      List.iter
        (fun variant ->
          let hardened = find (Printf.sprintf "%s/%s" benchmark variant) in
          let p3 = Pitfalls.analyze_pitfall3 ~baseline:base ~hardened in
          Format.printf "%-10s %-8s %a@." benchmark variant
            Pitfalls.pp_pitfall3 p3)
        [ "sum+dmr"; "tmr" ])
    [ "bin_sem2"; "mutex1"; "mbox1"; "flag1" ]

let run_optimization () =
  section "X4 | Compilation ablation: optimisation changes the fault space";
  (* A naively-written filter kernel, as a source-to-source generator
     would emit it: constant expressions spelled out, helper temporaries
     kept alive "for debugging".  const-fold + DSE removes the dead
     stores and resolves the constant branches. *)
  let source =
    let open Builder in
    prog ~name:"filter" ~stack:128
      [ array "samples" 12 ~init:[ 9; 2; 14; 7; 31; 4; 18; 25; 6; 11; 3; 28 ];
        array "out" 12; global "count" ]
      ([
         func "main" ~locals:[ "k"; "v"; "dbg"; "threshold" ]
           ([
              set "threshold" (i 2 *: i 5 +: i 2) (* constant: 12 *);
            ]
           @ for_ "k" ~from:(i 0) ~below:(i 12)
               [
                 set "v" (elem "samples" (l "k"));
                 set "dbg" (l "v" *: i 1000 +: l "k") (* dead *);
                 Mir.If
                   ( Mir.Cmp (Mir.Ltu, l "threshold", l "v"),
                     [
                       set_elem "out" (g "count") (l "v");
                       setg "count" (g "count" +: i 1);
                       set "dbg" (l "dbg" +: i 1) (* dead *);
                     ],
                     [] );
               ]
           @ [ out_str "kept "; call_ out_dec [ g "count" ];
               out_str "\n"; ret_unit ]);
       ]
      @ stdlib)
  in
  let entries =
    [
      ("filter -O0", Scan.pruned (Golden.run (Codegen.compile source)));
      ( "filter -O1",
        Scan.pruned ~variant:"optimized"
          (Golden.run (Codegen.compile (Optimize.optimize source))) );
    ]
  in
  print_string (Figures.ablation entries);
  print_string
    "\nThe compiler changes runtime and data lifetimes, so susceptibility\n\
     is a property of the binary, not the source (compare the F column);\n\
     any FI comparison must therefore fix the toolchain.\n"

let run_registers () =
  section "X3 | Register fault space (Sections VI-B/VI-C extension)";
  print_string
    (Figures.cross_layer
       [
         ("hi", Regspace.analyze (Hi.program ()));
         ("mbox1", Regspace.analyze (Mbox1.baseline ()));
         ("mutex1", Regspace.analyze (Mutex1.baseline ()));
       ])

let run_engine () =
  section "ENG | Campaign-engine ablation: checkpoint plan vs. replay provider";
  let golden = Golden.run (Mbox1.baseline ()) in
  let time label provider =
    let t0 = Sys.time () in
    let scan = Scan.pruned ~provider golden in
    Printf.printf "%-12s %6.2f s  (F = %d)\n" label (Sys.time () -. t0)
      (Metrics.failure_count scan);
    scan
  in
  let a = time "checkpoint" (Injector.plan golden) in
  let b = time "replay" (Injector.replay golden) in
  Printf.printf "identical results: %b\n" (a = b)

let run_engine_parallel () =
  section
    "ENGP | Parallel campaign engine: bin_sem2 serial vs backend × -j \
     (emits BENCH_engine.json)";
  let golden = Golden.run (Bin_sem2.baseline ()) in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let serial, t_serial = time (fun () -> Scan.pruned golden) in
  let runs =
    List.concat_map
      (fun backend ->
        List.map
          (fun jobs ->
            let scan, t =
              time (fun () -> Engine.run ~backend ~jobs golden)
            in
            (backend, jobs, t, scan = serial))
          [ 1; 2; 4 ])
      [ Pool.Domains; Pool.Processes ]
  in
  let cores = Pool.default_jobs () in
  Printf.printf "host cores          : %d\n" cores;
  Printf.printf "experiments         : %d\n"
    (Array.length serial.Scan.experiments);
  Printf.printf "serial Scan.pruned  : %6.2f s\n" t_serial;
  List.iter
    (fun (backend, jobs, t, identical) ->
      Printf.printf "%-9s -j %-2d      : %6.2f s  (speedup %.2fx, \
                     bit-identical %b)\n"
        (Pool.backend_tag backend) jobs t (t_serial /. t) identical)
    runs;
  if cores = 1 then
    Printf.printf
      "note: single-core host — parallel speedup is not observable here;\n\
      \      the engine still shards, journals and merges identically.\n";
  let json =
    let run_fields =
      List.map
        (fun (backend, jobs, t, identical) ->
          Printf.sprintf
            "    {\"backend\": \"%s\", \"jobs\": %d, \"seconds\": %.3f, \
             \"speedup\": %.3f, \"bit_identical\": %b}"
            (Pool.backend_tag backend) jobs t (t_serial /. t) identical)
        runs
    in
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"bin_sem2/baseline\",\n\
      \  \"host_cores\": %d,\n\
      \  \"classes\": %d,\n\
      \  \"experiments\": %d,\n\
      \  \"serial_seconds\": %.3f,\n\
      \  \"engine\": [\n%s\n  ]\n\
       }\n"
      cores
      (Array.length serial.Scan.experiments / 8)
      (Array.length serial.Scan.experiments)
      t_serial
      (String.concat ",\n" run_fields)
  in
  let oc = open_out "BENCH_engine.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_engine.json\n"

let run_engine_checkpoint () =
  section
    "ENGK | Checkpoint-plan hot path: snapshot sessions vs replay-from-reset \
     on both fault spaces (splices \"checkpoint\" into BENCH_engine.json)";
  let smoke = Sys.getenv_opt "FI_BENCH_SMOKE" <> None in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Smoke mode (CI): same differential check, smaller kernel, and the
     curated BENCH_engine.json numbers are left untouched. *)
  let program =
    if smoke then Mbox1.baseline () else Bin_sem2.baseline ()
  in
  let golden = Golden.run program in
  let replay_mem, t_mr =
    time (fun () -> Scan.pruned ~provider:(Injector.replay golden) golden)
  in
  let plan_mem, t_mp =
    time (fun () -> Scan.pruned ~provider:(Injector.plan golden) golden)
  in
  let mem_identical = plan_mem = replay_mem in
  let rt = Regspace.analyze program in
  let rgolden = rt.Regspace.golden in
  let replay_reg, t_rr =
    time (fun () -> Regspace.scan ~provider:(Injector.replay rgolden) rt)
  in
  let plan_reg, t_rp =
    time (fun () -> Regspace.scan ~provider:(Injector.plan rgolden) rt)
  in
  let reg_identical = plan_reg = replay_reg in
  Printf.printf "stride                    : %d cycles\n"
    Injector.default_stride;
  Printf.printf
    "memory space   replay    : %6.2f s   checkpoint: %6.2f s  (speedup \
     %.2fx, bit-identical %b)\n"
    t_mr t_mp (t_mr /. t_mp) mem_identical;
  Printf.printf
    "register space replay    : %6.2f s   checkpoint: %6.2f s  (speedup \
     %.2fx, bit-identical %b)\n"
    t_rr t_rp (t_rr /. t_rp) reg_identical;
  if not (mem_identical && reg_identical) then begin
    Printf.eprintf
      "engine-checkpoint: plan outcomes are NOT bit-identical to replay \
       (memory %b, registers %b)\n"
      mem_identical reg_identical;
    exit 1
  end;
  if smoke then
    Printf.printf
      "smoke mode: bit-identity verified; BENCH_engine.json left untouched\n"
  else begin
    (* Splice next to the engine sections, replacing any previous
       checkpoint section (idempotent re-runs); write a minimal skeleton
       if engine-parallel has not run yet.  The seed's recorded serial
       wall clock (the file's top-level "serial_seconds") is the
       cross-build reference the plan is measured against. *)
    let path = "BENCH_engine.json" in
    let base =
      if Sys.file_exists path then begin
        let ic = open_in_bin path in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        text
      end
      else "{\n  \"benchmark\": \"bin_sem2/baseline\"\n}\n"
    in
    let find_sub hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec scan i =
        if i + nn > nh then None
        else if String.sub hay i nn = needle then Some i
        else scan (i + 1)
      in
      scan 0
    in
    let seed_serial =
      match find_sub base "\"serial_seconds\": " with
      | None -> 0.
      | Some i -> (
          let start = i + String.length "\"serial_seconds\": " in
          let stop = ref start in
          while
            !stop < String.length base
            && (match base.[!stop] with
               | '0' .. '9' | '.' | '-' -> true
               | _ -> false)
          do
            incr stop
          done;
          try float_of_string (String.sub base start (!stop - start))
          with Failure _ -> 0.)
    in
    let ck_json =
      Printf.sprintf
        "{\n\
        \    \"stride\": %d,\n\
        \    \"memory\": {\"replay_seconds\": %.3f, \"plan_seconds\": %.3f, \
         \"speedup\": %.2f, \"bit_identical\": %b},\n\
        \    \"registers\": {\"replay_seconds\": %.3f, \"plan_seconds\": \
         %.3f, \"speedup\": %.2f, \"bit_identical\": %b},\n\
        \    \"seed_serial_seconds\": %.3f,\n\
        \    \"speedup_vs_seed\": %.2f\n\
        \  }"
        Injector.default_stride t_mr t_mp (t_mr /. t_mp) mem_identical t_rr
        t_rp (t_rr /. t_rp) reg_identical seed_serial
        (if t_mp > 0. && seed_serial > 0. then seed_serial /. t_mp else 0.)
    in
    let trim_tail s =
      let n = ref (String.length s) in
      while !n > 0 && (s.[!n - 1] = '\n' || s.[!n - 1] = ' ') do
        decr n
      done;
      String.sub s 0 !n
    in
    let body =
      match find_sub base ",\n  \"checkpoint\":" with
      | Some i -> String.sub base 0 i
      | None ->
          let t = trim_tail base in
          let n = String.length t in
          if n > 0 && t.[n - 1] = '}' then trim_tail (String.sub t 0 (n - 1))
          else t
    in
    let oc = open_out path in
    output_string oc (body ^ ",\n  \"checkpoint\": " ^ ck_json ^ "\n}\n");
    close_out oc;
    Printf.printf "spliced checkpoint into BENCH_engine.json\n"
  end

let run_engine_fuzz () =
  section
    "ENGF | Susceptibility fuzzer throughput: programs/s and campaigns/s, \
     domains vs processes (splices \"fuzz\" into BENCH_engine.json)";
  let smoke = Sys.getenv_opt "FI_BENCH_SMOKE" <> None in
  let budget = if smoke then 4 else 24 in
  let variants = [ Delta.Sum_dmr; Delta.Dft 16 ] in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Generation throughput: seeded program construction through the
     Mir.Check validity gate and a golden run, no campaigns. *)
  let (), t_gen =
    time (fun () ->
        let master = Prng.create ~seed:2024L in
        for _ = 1 to budget do
          let prog = Gen.program (Prng.create ~seed:(Prng.next_int64 master)) in
          ignore (Golden.run (Codegen.compile prog))
        done)
  in
  (* Differential-hunt throughput: each program is one baseline campaign
     plus one per variant, so the hunt conducts budget*(1+|variants|)
     campaigns.  Shrinking is off: it measures the shrinker, not the
     engine. *)
  let hunt backend =
    time (fun () ->
        Delta.run ~backend ~jobs:2 ~variants ~shrink_budget:0 ~seed:2024L
          ~budget ())
  in
  let h_dom, t_dom = hunt Pool.Domains in
  let h_proc, t_proc = hunt Pool.Processes in
  let campaigns = budget * (1 + List.length variants) in
  let identical = h_dom.Delta.findings = h_proc.Delta.findings in
  Printf.printf "programs generated  : %d  (%.1f programs/s)\n" budget
    (float_of_int budget /. t_gen);
  Printf.printf "campaigns per hunt  : %d\n" campaigns;
  Printf.printf
    "domains   -j 2      : %6.2f s  (%.1f campaigns/s, %d findings)\n" t_dom
    (float_of_int campaigns /. t_dom)
    (List.length h_dom.Delta.findings);
  Printf.printf
    "processes -j 2      : %6.2f s  (%.1f campaigns/s, %d findings)\n" t_proc
    (float_of_int campaigns /. t_proc)
    (List.length h_proc.Delta.findings);
  Printf.printf "identical findings  : %b\n" identical;
  if not identical then begin
    Printf.eprintf
      "engine-fuzz: domains and processes hunts disagree on findings\n";
    exit 1
  end;
  if smoke then
    Printf.printf
      "smoke mode: backend agreement verified; BENCH_engine.json left \
       untouched\n"
  else begin
    (* Same idempotent splice discipline as the checkpoint section. *)
    let path = "BENCH_engine.json" in
    let base =
      if Sys.file_exists path then begin
        let ic = open_in_bin path in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        text
      end
      else "{\n  \"benchmark\": \"bin_sem2/baseline\"\n}\n"
    in
    let find_sub hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec scan i =
        if i + nn > nh then None
        else if String.sub hay i nn = needle then Some i
        else scan (i + 1)
      in
      scan 0
    in
    let fz_json =
      Printf.sprintf
        "{\n\
        \    \"budget\": %d,\n\
        \    \"programs_per_sec\": %.1f,\n\
        \    \"campaigns\": %d,\n\
        \    \"domains\": {\"seconds\": %.3f, \"campaigns_per_sec\": %.1f, \
         \"findings\": %d},\n\
        \    \"processes\": {\"seconds\": %.3f, \"campaigns_per_sec\": %.1f, \
         \"findings\": %d},\n\
        \    \"identical_findings\": %b\n\
        \  }"
        budget
        (float_of_int budget /. t_gen)
        campaigns t_dom
        (float_of_int campaigns /. t_dom)
        (List.length h_dom.Delta.findings)
        t_proc
        (float_of_int campaigns /. t_proc)
        (List.length h_proc.Delta.findings)
        identical
    in
    let trim_tail s =
      let n = ref (String.length s) in
      while !n > 0 && (s.[!n - 1] = '\n' || s.[!n - 1] = ' ') do
        decr n
      done;
      String.sub s 0 !n
    in
    let body =
      match find_sub base ",\n  \"fuzz\":" with
      | Some i -> String.sub base 0 i
      | None ->
          let t = trim_tail base in
          let n = String.length t in
          if n > 0 && t.[n - 1] = '}' then trim_tail (String.sub t 0 (n - 1))
          else t
    in
    let oc = open_out path in
    output_string oc (body ^ ",\n  \"fuzz\": " ^ fz_json ^ "\n}\n");
    close_out oc;
    Printf.printf "spliced fuzz into BENCH_engine.json\n"
  end

let run_engine_supervision () =
  section
    "ENGS | Supervision overhead and healing cost: undisturbed vs crashing \
     vs hanging workers (splices \"supervision\" into BENCH_engine.json)";
  let golden = Golden.run (Bin_sem2.baseline ()) in
  let serial = Scan.pruned golden in
  let jobs = 2 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let supervised ?shard_timeout () =
    Spec.make_policy ?shard_timeout ~max_retries:2 ~quarantine:true ()
  in
  let with_torture value f =
    Unix.putenv Worker.torture_var value;
    Fun.protect ~finally:(fun () -> Unix.putenv Worker.torture_var "") f
  in
  let run ?torture policy =
    let snap = ref None in
    let go () =
      time (fun () ->
          Engine.run_spec_result ~backend:Pool.Processes ~jobs
            ~observe:(fun s -> snap := Some s)
            (Spec.of_golden ~policy golden))
    in
    let result, t =
      match torture with None -> go () | Some v -> with_torture v go
    in
    let retries, kills =
      match !snap with
      | Some s -> (s.Progress.retries, s.Progress.kills)
      | None -> (0, 0)
    in
    (t, result.Engine.scan = serial, retries, kills)
  in
  (* Baseline: supervision off entirely — the seed engine's hot path. *)
  let t_plain, ok_plain, _, _ = run Spec.default_policy in
  (* Supervision armed but never triggered: the overhead claim. *)
  let t_sup, ok_sup, r_sup, k_sup = run (supervised ~shard_timeout:60. ()) in
  (* Every first worker crashes once: bounded retry heals in place. *)
  let t_crash, ok_crash, r_crash, _ =
    run ~torture:"exit:0:0" (supervised ())
  in
  (* One worker hangs: deadline kill + retry heals in place. *)
  let t_hang, ok_hang, _, k_hang =
    run ~torture:"hang:0:0" (supervised ~shard_timeout:0.5 ())
  in
  let overhead_pct = (t_sup -. t_plain) /. t_plain *. 100. in
  Printf.printf "unsupervised        : %6.2f s  (bit-identical %b)\n" t_plain
    ok_plain;
  Printf.printf "supervised, healthy : %6.2f s  (overhead %+.1f%%, \
                 bit-identical %b, retries %d, kills %d)\n"
    t_sup overhead_pct ok_sup r_sup k_sup;
  Printf.printf "crashing worker     : %6.2f s  (healed %b, retries %d)\n"
    t_crash ok_crash r_crash;
  Printf.printf "hung worker         : %6.2f s  (healed %b, kills %d)\n"
    t_hang ok_hang k_hang;
  let sup_json =
    Printf.sprintf
      "{\n\
      \    \"jobs\": %d,\n\
      \    \"unsupervised_seconds\": %.3f,\n\
      \    \"supervised_seconds\": %.3f,\n\
      \    \"overhead_percent\": %.2f,\n\
      \    \"healthy_bit_identical\": %b,\n\
      \    \"crash_heal_seconds\": %.3f,\n\
      \    \"crash_healed\": %b,\n\
      \    \"crash_retries\": %d,\n\
      \    \"hang_heal_seconds\": %.3f,\n\
      \    \"hang_healed\": %b,\n\
      \    \"hang_kills\": %d\n\
      \  }"
      jobs t_plain t_sup overhead_pct (ok_plain && ok_sup) t_crash ok_crash
      r_crash t_hang ok_hang k_hang
  in
  (* Splice into BENCH_engine.json next to the engine-parallel runs,
     replacing any previous supervision section (idempotent re-runs);
     write a minimal skeleton if engine-parallel has not run yet. *)
  let path = "BENCH_engine.json" in
  let base =
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      text
    end
    else "{\n  \"benchmark\": \"bin_sem2/baseline\"\n}\n"
  in
  let find_sub hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec scan i =
      if i + nn > nh then None
      else if String.sub hay i nn = needle then Some i
      else scan (i + 1)
    in
    scan 0
  in
  let trim_tail s =
    let n = ref (String.length s) in
    while !n > 0 && (s.[!n - 1] = '\n' || s.[!n - 1] = ' ') do
      decr n
    done;
    String.sub s 0 !n
  in
  let body =
    match find_sub base ",\n  \"supervision\":" with
    | Some i -> String.sub base 0 i
    | None ->
        let t = trim_tail base in
        let n = String.length t in
        if n > 0 && t.[n - 1] = '}' then trim_tail (String.sub t 0 (n - 1))
        else t
  in
  let oc = open_out path in
  output_string oc (body ^ ",\n  \"supervision\": " ^ sup_json ^ "\n}\n");
  close_out oc;
  Printf.printf "spliced supervision into BENCH_engine.json\n"

let run_engine_net () =
  section
    "ENGN | Distributed engine: bin_sem2 over a loopback worker daemon vs \
     the Processes backend (splices \"net\" into BENCH_engine.json)";
  let golden = Golden.run (Bin_sem2.baseline ()) in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let serial, t_serial = time (fun () -> Scan.pruned golden) in
  let jobs = 2 in
  let procs, t_procs =
    time (fun () -> Engine.run ~backend:Pool.Processes ~jobs golden)
  in
  match Remote.spawn_daemon ~workers:jobs () with
  | Error e -> Printf.printf "engine-net skipped: no daemon (%s)\n" e
  | Ok (pid, addr) ->
      Fun.protect
        ~finally:(fun () -> Remote.kill_daemon pid)
        (fun () ->
          let net, t_net =
            time (fun () ->
                Engine.run
                  ~backend:(Pool.Sockets [ Addr.to_string addr ])
                  ~jobs golden)
          in
          let identical = net = serial && procs = serial in
          let overhead_pct = (t_net -. t_procs) /. t_procs *. 100. in
          Printf.printf "serial Scan.pruned      : %6.2f s\n" t_serial;
          Printf.printf "processes -j %d          : %6.2f s\n" jobs t_procs;
          Printf.printf
            "sockets loopback -j %d   : %6.2f s  (overhead vs processes \
             %+.1f%%, bit-identical %b)\n"
            jobs t_net overhead_pct identical;
          let net_json =
            Printf.sprintf
              "{\n\
              \    \"transport\": \"tcp-loopback\",\n\
              \    \"jobs\": %d,\n\
              \    \"serial_seconds\": %.3f,\n\
              \    \"processes_seconds\": %.3f,\n\
              \    \"sockets_seconds\": %.3f,\n\
              \    \"overhead_vs_processes_pct\": %.1f,\n\
              \    \"bit_identical\": %b\n\
              \  }"
              jobs t_serial t_procs t_net overhead_pct identical
          in
          (* Splice next to the engine-parallel/supervision sections,
             replacing any previous net section (idempotent re-runs);
             write a minimal skeleton if engine-parallel has not run
             yet. *)
          let path = "BENCH_engine.json" in
          let base =
            if Sys.file_exists path then begin
              let ic = open_in_bin path in
              let text = really_input_string ic (in_channel_length ic) in
              close_in ic;
              text
            end
            else "{\n  \"benchmark\": \"bin_sem2/baseline\"\n}\n"
          in
          let find_sub hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec scan i =
              if i + nn > nh then None
              else if String.sub hay i nn = needle then Some i
              else scan (i + 1)
            in
            scan 0
          in
          let trim_tail s =
            let n = ref (String.length s) in
            while !n > 0 && (s.[!n - 1] = '\n' || s.[!n - 1] = ' ') do
              decr n
            done;
            String.sub s 0 !n
          in
          let body =
            match find_sub base ",\n  \"net\":" with
            | Some i -> String.sub base 0 i
            | None ->
                let t = trim_tail base in
                let n = String.length t in
                if n > 0 && t.[n - 1] = '}' then
                  trim_tail (String.sub t 0 (n - 1))
                else t
          in
          let oc = open_out path in
          output_string oc (body ^ ",\n  \"net\": " ^ net_json ^ "\n}\n");
          close_out oc;
          Printf.printf "spliced net into BENCH_engine.json\n")

let run_engine_cache () =
  section
    "ENGC | Result cache: bin_sem2 cold campaign vs warm replay from the \
     content-addressed store, plus service cache-hit dispatch latency \
     (splices \"cache\" into BENCH_engine.json)";
  let dir = Filename.temp_file "fibench" ".store" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun name -> Sys.remove (Filename.concat dir name))
           (Sys.readdir dir)
       with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () ->
      let time f =
        let t0 = Unix.gettimeofday () in
        let r = f () in
        (r, Unix.gettimeofday () -. t0)
      in
      let golden = Golden.run (Bin_sem2.baseline ()) in
      let policy = Spec.make_policy ~catalogue:dir ~cache:dir () in
      let jobs = 2 in
      let run () =
        Engine.run_spec_result ~backend:Pool.Domains ~jobs
          (Spec.of_golden ~policy golden)
      in
      let cold, t_cold = time run in
      let warm, t_warm = time run in
      let identical = cold.Engine.scan = warm.Engine.scan in
      let speedup = t_cold /. t_warm in
      Printf.printf "cold campaign -j %d      : %6.2f s\n" jobs t_cold;
      Printf.printf
        "warm replay (cache hit) : %6.3f s  (speedup %.0fx, hit %b, \
         bit-identical %b)\n"
        t_warm speedup warm.Engine.cached identical;
      (* Cache-hit dispatch latency through the service front door: the
         store is warm, so each submit is answered without scheduling a
         single shard. *)
      let config =
        { Service.default_config with Service.artifacts = dir; jobs }
      in
      let t_dispatch =
        match Service.spawn_daemon ~config () with
        | Error e ->
            Printf.printf "service latency skipped: no daemon (%s)\n" e;
            nan
        | Ok (pid, addr) ->
            Fun.protect
              ~finally:(fun () -> Service.kill_daemon pid)
              (fun () ->
                let cell =
                  Service.cell_of_spec (Spec.of_golden ~policy golden)
                in
                let hit () =
                  match Service.submit ~addr [ cell ] with
                  | Ok [ r ] when r.Service.r_cached -> ()
                  | Ok _ -> failwith "service returned a non-hit"
                  | Error msg -> failwith msg
                in
                hit () (* connect-path warmup *);
                let rounds = 10 in
                let (), t =
                  time (fun () ->
                      for _ = 1 to rounds do
                        hit ()
                      done)
                in
                let per = t /. float_of_int rounds in
                Printf.printf
                  "service cache-hit dispatch: %6.1f ms/submission (%d \
                   rounds)\n"
                  (per *. 1000.) rounds;
                per)
      in
      let cache_json =
        Printf.sprintf
          "{\n\
          \    \"jobs\": %d,\n\
          \    \"cold_seconds\": %.3f,\n\
          \    \"warm_seconds\": %.4f,\n\
          \    \"speedup\": %.1f,\n\
          \    \"warm_cached\": %b,\n\
          \    \"bit_identical\": %b,\n\
          \    \"service_hit_dispatch_ms\": %.2f\n\
          \  }"
          jobs t_cold t_warm speedup warm.Engine.cached identical
          (t_dispatch *. 1000.)
      in
      let path = "BENCH_engine.json" in
      let base =
        if Sys.file_exists path then begin
          let ic = open_in_bin path in
          let text = really_input_string ic (in_channel_length ic) in
          close_in ic;
          text
        end
        else "{\n  \"benchmark\": \"bin_sem2/baseline\"\n}\n"
      in
      let find_sub hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec scan i =
          if i + nn > nh then None
          else if String.sub hay i nn = needle then Some i
          else scan (i + 1)
        in
        scan 0
      in
      let trim_tail s =
        let n = ref (String.length s) in
        while !n > 0 && (s.[!n - 1] = '\n' || s.[!n - 1] = ' ') do
          decr n
        done;
        String.sub s 0 !n
      in
      let body =
        match find_sub base ",\n  \"cache\":" with
        | Some i -> String.sub base 0 i
        | None ->
            let t = trim_tail base in
            let n = String.length t in
            if n > 0 && t.[n - 1] = '}' then trim_tail (String.sub t 0 (n - 1))
            else t
      in
      let oc = open_out path in
      output_string oc (body ^ ",\n  \"cache\": " ^ cache_json ^ "\n}\n");
      close_out oc;
      Printf.printf "spliced cache into BENCH_engine.json\n")

let run_engine_faultspace () =
  section
    "ENGM | Fault-model throughput: experiments/second per pluggable model \
     through the shared engine (splices \"faultspace\" into \
     BENCH_engine.json)";
  let smoke = Sys.getenv_opt "FI_BENCH_SMOKE" <> None in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let program = if smoke then Mbox1.baseline () else Bin_sem2.baseline () in
  let golden = Golden.run program in
  let rt = Regspace.analyze program in
  let models =
    [ Faultspace.Bitflip_mem; Faultspace.Bitflip_reg; Faultspace.burst 3;
      Faultspace.burst ~row:2 3; Faultspace.Skip ]
  in
  let measured =
    List.map
      (fun model ->
        let spec =
          match model with
          | Faultspace.Bitflip_reg -> Spec.of_regspace rt
          | m -> Spec.of_golden ~model:m golden
        in
        let scan, seconds = time (fun () -> Engine.run_spec ~jobs:0 spec) in
        let experiments = Array.length scan.Scan.experiments in
        let rate = if seconds > 0. then float experiments /. seconds else 0. in
        Printf.printf "%-10s : %7d experiments  %6.2f s  %9.0f exp/s\n"
          (Faultspace.tag model) experiments seconds rate;
        (Faultspace.tag model, experiments, seconds, rate))
      models
  in
  if smoke then
    Printf.printf
      "smoke mode: per-model throughput measured; BENCH_engine.json left \
       untouched\n"
  else begin
    (* Same idempotent splice discipline as the other engine sections. *)
    let path = "BENCH_engine.json" in
    let base =
      if Sys.file_exists path then begin
        let ic = open_in_bin path in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        text
      end
      else "{\n  \"benchmark\": \"bin_sem2/baseline\"\n}\n"
    in
    let find_sub hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec scan i =
        if i + nn > nh then None
        else if String.sub hay i nn = needle then Some i
        else scan (i + 1)
      in
      scan 0
    in
    let trim_tail s =
      let n = ref (String.length s) in
      while !n > 0 && (s.[!n - 1] = '\n' || s.[!n - 1] = ' ') do
        decr n
      done;
      String.sub s 0 !n
    in
    let fs_json =
      Printf.sprintf "{\n%s\n  }"
        (String.concat ",\n"
           (List.map
              (fun (tag, experiments, seconds, rate) ->
                Printf.sprintf
                  "    \"%s\": {\"experiments\": %d, \"seconds\": %.3f, \
                   \"per_second\": %.0f}"
                  tag experiments seconds rate)
              measured))
    in
    let body =
      match find_sub base ",\n  \"faultspace\":" with
      | Some i -> String.sub base 0 i
      | None ->
          let t = trim_tail base in
          let n = String.length t in
          if n > 0 && t.[n - 1] = '}' then trim_tail (String.sub t 0 (n - 1))
          else t
    in
    let oc = open_out path in
    output_string oc (body ^ ",\n  \"faultspace\": " ^ fs_json ^ "\n}\n");
    close_out oc;
    Printf.printf "spliced faultspace into BENCH_engine.json\n"
  end

let run_matrix_parallel () =
  section
    "ENGM | Matrix engine: paper pairs back-to-back serial vs one \
     run_matrix (emits BENCH_matrix.json)";
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Back-to-back serial conductors: the pre-matrix way of covering the
     Figure-2 cells. *)
  let serial, t_serial =
    time (fun () ->
        List.concat_map
          (fun (_, baseline, hardened) ->
            [ Scan.pruned (Golden.run (baseline ()));
              Scan.pruned ~variant:"sum+dmr" (Golden.run (hardened ())) ])
          Suite.paper_pairs)
  in
  let runs =
    List.map
      (fun jobs ->
        let scans, t =
          time (fun () -> Engine.run_matrix ~jobs (Suite.paper_specs ()))
        in
        (jobs, t, List.for_all2 (fun a b -> a = b) scans serial))
      [ 1; 2; 4 ]
  in
  let cores = Pool.default_jobs () in
  let experiments =
    List.fold_left (fun n s -> n + Array.length s.Scan.experiments) 0 serial
  in
  Printf.printf "host cores          : %d\n" cores;
  Printf.printf "matrix cells        : %d (%d experiments)\n"
    (List.length serial) experiments;
  Printf.printf "back-to-back serial : %6.2f s\n" t_serial;
  List.iter
    (fun (jobs, t, identical) ->
      Printf.printf
        "run_matrix -j %-2d    : %6.2f s  (speedup %.2fx, bit-identical %b)\n"
        jobs t (t_serial /. t) identical)
    runs;
  if cores = 1 then
    Printf.printf
      "note: single-core host — parallel speedup is not observable here;\n\
      \      the matrix still shares one pool and merges identically.\n";
  let json =
    let run_fields =
      List.map
        (fun (jobs, t, identical) ->
          Printf.sprintf
            "    {\"jobs\": %d, \"seconds\": %.3f, \"speedup\": %.3f, \
             \"bit_identical\": %b}"
            jobs t (t_serial /. t) identical)
        runs
    in
    Printf.sprintf
      "{\n\
      \  \"matrix\": \"paper_pairs\",\n\
      \  \"host_cores\": %d,\n\
      \  \"cells\": %d,\n\
      \  \"experiments\": %d,\n\
      \  \"serial_seconds\": %.3f,\n\
      \  \"run_matrix\": [\n%s\n  ]\n\
       }\n"
      cores (List.length serial) experiments t_serial
      (String.concat ",\n" run_fields)
  in
  let oc = open_out "BENCH_matrix.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_matrix.json\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                          *)
(* ------------------------------------------------------------------ *)

let perf_tests () =
  let open Bechamel in
  let hi_golden = Golden.run (Hi.program ()) in
  let bin_image = Bin_sem2.baseline () in
  let bin_golden = Golden.run bin_image in
  let rng = Prng.create ~seed:1L in
  let sample_words =
    Array.init 256 (fun _ -> Int64.to_int32 (Prng.next_int64 rng))
  in
  [
    (* One Test.make per reproduced artifact's dominant kernel, plus the
       substrate primitives. *)
    Test.make ~name:"T1-poisson-pmf"
      (Staged.stage (fun () -> ignore (Poisson.pmf ~lambda:1.66e-14 1)));
    Test.make ~name:"F1-defuse-analysis"
      (Staged.stage (fun () -> ignore (Defuse.analyze bin_golden.Golden.trace)));
    Test.make ~name:"F3-hi-full-scan"
      (Staged.stage (fun () -> ignore (Scan.pruned hi_golden)));
    Test.make ~name:"F2-golden-run-bin-sem2"
      (Staged.stage (fun () ->
           let m = Machine.create bin_image in
           ignore (Machine.run m ~limit:10_000_000)));
    Test.make ~name:"F2-one-experiment"
      (Staged.stage
         (let coord =
            { Coordspace.cycle = bin_golden.Golden.cycles / 2; bit = 64 }
          in
          fun () -> ignore (Injector.run_at bin_golden coord)));
    Test.make ~name:"P2-sampling-256"
      (Staged.stage (fun () ->
           let rng = Prng.create ~seed:7L in
           ignore (Sampler.uniform_raw rng ~samples:256 hi_golden)));
    Test.make ~name:"substrate-encode-decode"
      (Staged.stage (fun () ->
           Array.iter
             (fun w ->
               match Encoding.decode w with
               | Ok i -> ignore (Encoding.encode i)
               | Error _ -> ())
             sample_words));
    Test.make ~name:"substrate-snapshot-restore"
      (Staged.stage
         (let m = Machine.create bin_image in
          Machine.run_until m ~cycle:1000;
          let snap = Machine.Snapshot.capture m in
          fun () -> ignore (Machine.Snapshot.restore snap ~tracer:None)));
  ]

let run_perf () =
  section "PERF | Bechamel micro-benchmarks of the substrate";
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"fipitfalls" ~fmt:"%s %s" (perf_tests ()))
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let t =
    Table.create
      ~columns:
        [ ("benchmark", Table.Left); ("time/run", Table.Right);
          ("r^2", Table.Right) ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let estimate =
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.sprintf "%.1f ns" est
        | Some _ | None -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square result with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "n/a"
      in
      rows := (name, estimate, r2) :: !rows)
    results;
  List.iter
    (fun (name, estimate, r2) -> Table.row t [ name; estimate; r2 ])
    (List.sort compare !rows);
  Table.print t

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let artifacts =
  [
    ("table1", run_table1);
    ("figure1", run_figure1);
    ("figure3", run_figure3);
    ("figure2", run_figure2);
    ("pruning", run_pruning);
    ("pitfall2", run_pitfall2);
    ("pitfall3", run_pitfall3);
    ("figure2-sampled", run_figure2_sampled);
    ("ratios", run_ratios);
    ("ablation", run_ablation);
    ("registers", run_registers);
    ("engine", run_engine);
    ("engine-parallel", run_engine_parallel);
    ("engine-checkpoint", run_engine_checkpoint);
    ("engine-fuzz", run_engine_fuzz);
    ("engine-supervision", run_engine_supervision);
    ("engine-net", run_engine_net);
    ("engine-cache", run_engine_cache);
    ("engine-faultspace", run_engine_faultspace);
    ("matrix-parallel", run_matrix_parallel);
    ("optimization", run_optimization);
    ("perf", run_perf);
  ]

let () =
  (* If this process was exec'd as a campaign worker (the engine's
     process backend re-execs the hosting binary) or as a remote-worker
     daemon (the sockets backend does the same), serve and exit. *)
  Worker.guard ();
  Remote.guard ();
  Service.guard ();
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst artifacts
  in
  List.iter
    (fun name ->
      match List.assoc_opt name artifacts with
      | Some run -> run ()
      | None ->
          Printf.eprintf "unknown artifact %S; available: %s\n" name
            (String.concat ", " (List.map fst artifacts));
          exit 1)
    requested
