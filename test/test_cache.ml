(* Tests for the content-addressed result store (lib/cache) and its
   engine integration: cell keying, the sidecar index lock, publish /
   lookup semantics, bit-identical cache hits in both fault spaces,
   zero shard executions on a warm cell, quarantine never published,
   policy-distinct cells never colliding, and compaction protecting
   cache-referenced journals. *)

let contains = Astring_contains.contains
let hi_golden = lazy (Golden.run (Hi.program ()))
let hi_serial = lazy (Scan.pruned (Lazy.force hi_golden))

let check_scans_identical msg serial parallel =
  Alcotest.(check bool) (msg ^ " (structural)") true (serial = parallel);
  Alcotest.(check string)
    (msg ^ " (serialised)")
    (Csv_io.to_string serial)
    (Csv_io.to_string parallel)

let with_temp_dir f =
  let dir = Filename.temp_file "ficache" ".store" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun name -> Sys.remove (Filename.concat dir name))
           (Sys.readdir dir)
       with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let with_torture value f =
  Unix.putenv Worker.torture_var value;
  Fun.protect ~finally:(fun () -> Unix.putenv Worker.torture_var "") f

(* Re-exec guard for the cross-process lock test below.  [Unix.fork]
   is unavailable once this binary has spawned domains, so the
   contending process is a fresh copy of the test executable: it
   announces readiness, blocks on the lock named in the environment,
   then leaves a witness file next to it. *)
let lock_helper_var = "FI_TEST_LOCK_HELPER"

let helper_guard () =
  match Sys.getenv_opt lock_helper_var with
  | None | Some "" -> ()
  | Some target ->
      let mark name =
        let path = Filename.concat (Filename.dirname target) name in
        let oc = open_out path in
        output_string oc "locked";
        close_out oc
      in
      mark "ready";
      Lockfile.with_lock target (fun () -> mark "witness");
      exit 0

let spawn_helper var value =
  let env =
    Array.append (Unix.environment ()) [| Printf.sprintf "%s=%s" var value |]
  in
  Unix.create_process_env Sys.executable_name [| Sys.executable_name |] env
    Unix.stdin Unix.stdout Unix.stderr

let cache_policy ?journal ?shard_size ?(weighted = false) dir =
  Spec.make_policy ?journal ?shard_size ~weighted ~catalogue:dir ~cache:dir ()

(* ------------------------------------------------------------------ *)
(* Keying                                                             *)
(* ------------------------------------------------------------------ *)

let test_cell_key_distinct () =
  let base =
    Cache.cell_key ~image:"img" ~space:"memory" ~limit:None ~shard_size:None
      ~weighted:false
  in
  let same =
    Cache.cell_key ~image:"img" ~space:"memory" ~limit:None ~shard_size:None
      ~weighted:false
  in
  Alcotest.(check string) "deterministic" base same;
  Alcotest.(check int) "hex key length" Cache.key_length (String.length base);
  let variants =
    [
      Cache.cell_key ~image:"img2" ~space:"memory" ~limit:None
        ~shard_size:None ~weighted:false;
      Cache.cell_key ~image:"img" ~space:"registers" ~limit:None
        ~shard_size:None ~weighted:false;
      Cache.cell_key ~image:"img" ~space:"memory" ~limit:(Some 4096)
        ~shard_size:None ~weighted:false;
      Cache.cell_key ~image:"img" ~space:"memory" ~limit:None
        ~shard_size:(Some 8) ~weighted:false;
      Cache.cell_key ~image:"img" ~space:"memory" ~limit:None ~shard_size:None
        ~weighted:true;
    ]
  in
  List.iteri
    (fun i k ->
      Alcotest.(check bool)
        (Printf.sprintf "variant %d differs from base" i)
        true (k <> base))
    variants;
  let uniq = List.sort_uniq compare (base :: variants) in
  Alcotest.(check int) "all six keys distinct" 6 (List.length uniq)

(* ------------------------------------------------------------------ *)
(* Sidecar index lock                                                 *)
(* ------------------------------------------------------------------ *)

let test_lockfile_roundtrip () =
  with_temp_dir (fun dir ->
      let target = Filename.concat dir "results.idx" in
      let v = Lockfile.with_lock target (fun () -> 41 + 1) in
      Alcotest.(check int) "body result returned" 42 v;
      Alcotest.(check bool) "sidecar created" true
        (Sys.file_exists (Lockfile.lock_path target));
      (* Released on return: a second acquisition doesn't deadlock. *)
      Alcotest.(check int) "re-acquirable" 7
        (Lockfile.with_lock target (fun () -> 7));
      (* Released on exception too. *)
      (match Lockfile.with_lock target (fun () -> failwith "boom") with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "exception swallowed");
      Alcotest.(check int) "re-acquirable after raise" 9
        (Lockfile.with_lock target (fun () -> 9)))

let test_lockfile_excludes_across_processes () =
  with_temp_dir (fun dir ->
      let target = Filename.concat dir "results.idx" in
      let ready = Filename.concat dir "ready" in
      let witness = Filename.concat dir "witness" in
      let await path =
        let deadline = Unix.gettimeofday () +. 10. in
        while (not (Sys.file_exists path)) && Unix.gettimeofday () < deadline
        do
          Unix.sleepf 0.02
        done;
        Sys.file_exists path
      in
      let pid = ref 0 in
      Lockfile.with_lock target (fun () ->
          (* A fresh process contending for the same lock must block
             until we release: wait for it to start, give it a moment
             to reach the lock, then verify it hasn't run. *)
          pid := spawn_helper lock_helper_var target;
          Alcotest.(check bool) "contender started" true (await ready);
          Unix.sleepf 0.3;
          Alcotest.(check bool) "child blocked while we hold the lock"
            false (Sys.file_exists witness));
      (* Release by returning: the contender acquires and runs. *)
      Alcotest.(check bool) "child ran after release" true (await witness);
      ignore (Unix.waitpid [] !pid))

(* ------------------------------------------------------------------ *)
(* Index semantics                                                    *)
(* ------------------------------------------------------------------ *)

let test_publish_lookup_roundtrip () =
  with_temp_dir (fun dir ->
      let key =
        Cache.cell_key ~image:"x" ~space:"memory" ~limit:None ~shard_size:None
          ~weighted:false
      in
      Alcotest.(check bool) "empty store misses" true
        (Cache.lookup ~dir key = None);
      let path = Filename.concat dir "with space.journal" in
      Cache.publish ~dir ~key ~fingerprint:0xdeadbeef ~path;
      (match Cache.lookup ~dir key with
      | None -> Alcotest.fail "published entry not found"
      | Some e ->
          Alcotest.(check string) "path (with spaces) survives" path
            e.Cache.path;
          Alcotest.(check bool) "fingerprint survives" true
            (e.Cache.fingerprint = 0xdeadbeef));
      (* Re-publishing the same key is idempotent-ish: last wins. *)
      Cache.publish ~dir ~key ~fingerprint:0x1234 ~path:"/elsewhere/a.j";
      (match Cache.lookup ~dir key with
      | Some e ->
          Alcotest.(check bool) "last publication wins" true
            (e.Cache.fingerprint = 0x1234)
      | None -> Alcotest.fail "entry vanished");
      (* Corrupt lines are tolerated, not fatal. *)
      let oc =
        open_out_gen [ Open_append ] 0o644 (Cache.index_path ~dir)
      in
      output_string oc "not a valid line\nzz short\n";
      close_out oc;
      Alcotest.(check bool) "lookup survives garbage lines" true
        (Cache.lookup ~dir key <> None);
      Alcotest.(check bool) "referenced tracks published paths" true
        (Cache.referenced ~dir "/elsewhere/a.j");
      Alcotest.(check bool) "unpublished path not referenced" false
        (Cache.referenced ~dir "/elsewhere/b.j"))

(* ------------------------------------------------------------------ *)
(* Engine integration: warm hits                                      *)
(* ------------------------------------------------------------------ *)

let run_cached ?backend ?jobs ~dir golden =
  Engine.run_spec_result ?backend ?jobs
    (Spec.of_golden ~policy:(cache_policy dir) golden)

let test_memory_hit_bit_identical () =
  with_temp_dir (fun dir ->
      let golden = Lazy.force hi_golden in
      let serial = Lazy.force hi_serial in
      let cold = run_cached ~dir golden in
      Alcotest.(check bool) "cold run is not a hit" false cold.Engine.cached;
      check_scans_identical "cold = serial" serial cold.Engine.scan;
      let warm = run_cached ~dir golden in
      Alcotest.(check bool) "warm run is a hit" true warm.Engine.cached;
      check_scans_identical "warm = serial" serial warm.Engine.scan;
      check_scans_identical "warm = cold" cold.Engine.scan warm.Engine.scan)

let test_register_hit_bit_identical () =
  with_temp_dir (fun dir ->
      let spec builddir =
        Spec.registers ~benchmark:"hi" ~policy:(cache_policy builddir)
          (fun () -> Hi.program ())
      in
      let serial = Regspace.scan (Regspace.analyze (Hi.program ())) in
      let cold = Engine.run_spec_result (spec dir) in
      Alcotest.(check bool) "cold register run not a hit" false
        cold.Engine.cached;
      check_scans_identical "cold registers = serial" serial cold.Engine.scan;
      let warm = Engine.run_spec_result (spec dir) in
      Alcotest.(check bool) "warm register run is a hit" true
        warm.Engine.cached;
      check_scans_identical "warm registers = cold" cold.Engine.scan
        warm.Engine.scan)

(* The acceptance bar: a warm matrix re-runs with ZERO shard
   executions.  Proof by sabotage — under [exit:0] torture every
   process-backend worker dies the instant it starts, so the warm run
   can only complete cleanly (no retries, no quarantine) if no worker
   was ever spawned. *)
let test_warm_run_executes_no_shards () =
  with_temp_dir (fun dir ->
      let golden = Lazy.force hi_golden in
      let cold = run_cached ~backend:Pool.Processes ~jobs:2 ~dir golden in
      Alcotest.(check bool) "cold completes" false cold.Engine.cached;
      let events = ref [] in
      let warm =
        with_torture "exit:0" (fun () ->
            Engine.run_spec_result ~backend:Pool.Processes ~jobs:2
              ~on_event:(fun msg -> events := msg :: !events)
              (Spec.of_golden ~policy:(cache_policy dir) golden))
      in
      Alcotest.(check bool) "warm run is a hit" true warm.Engine.cached;
      Alcotest.(check int) "no supervision events — nothing ran" 0
        (List.length !events);
      Alcotest.(check int) "nothing quarantined" 0
        (List.length warm.Engine.quarantined);
      check_scans_identical "sabotaged warm run = cold" cold.Engine.scan
        warm.Engine.scan)

(* ------------------------------------------------------------------ *)
(* Quarantine and policy separation                                   *)
(* ------------------------------------------------------------------ *)

let test_quarantined_never_published () =
  with_temp_dir (fun dir ->
      let golden = Lazy.force hi_golden in
      let policy =
        {
          (cache_policy ~shard_size:1 dir) with
          Spec.supervision =
            { Spec.default_supervision with Spec.quarantine = true };
        }
      in
      let degraded =
        with_torture "exit:0" (fun () ->
            Engine.run_spec_result ~backend:Pool.Processes ~jobs:2
              (Spec.of_golden ~policy golden))
      in
      Alcotest.(check bool) "campaign was degraded" true
        (degraded.Engine.quarantined <> []);
      Alcotest.(check int) "nothing published to the store" 0
        (List.length (Cache.entries ~dir));
      (* And a follow-up run is NOT served from cache. *)
      let followup = run_cached ~dir golden in
      Alcotest.(check bool) "follow-up re-runs instead of hitting" false
        followup.Engine.cached)

let test_policy_keys_do_not_collide () =
  with_temp_dir (fun dir ->
      let golden = Lazy.force hi_golden in
      let run policy =
        Engine.run_spec_result (Spec.of_golden ~policy golden)
      in
      let cold = run (cache_policy dir) in
      Alcotest.(check bool) "cold miss" false cold.Engine.cached;
      (* Same program, different plan geometry: per-class shards and
         weighted sizing each key differently — no collision with the
         default-geometry publication. *)
      let sharded = run (cache_policy ~shard_size:1 dir) in
      Alcotest.(check bool) "shard_size=1 cell misses" false
        sharded.Engine.cached;
      let weighted = run (cache_policy ~weighted:true dir) in
      Alcotest.(check bool) "weighted cell misses" false
        weighted.Engine.cached;
      (* Each geometry is now warm under its own key. *)
      Alcotest.(check bool) "default geometry hits" true
        (run (cache_policy dir)).Engine.cached;
      Alcotest.(check bool) "shard_size=1 hits its own entry" true
        (run (cache_policy ~shard_size:1 dir)).Engine.cached;
      Alcotest.(check bool) "weighted hits its own entry" true
        (run (cache_policy ~weighted:true dir)).Engine.cached)

(* ------------------------------------------------------------------ *)
(* Compaction protection                                              *)
(* ------------------------------------------------------------------ *)

let test_compact_protects_cache_referenced_journals () =
  with_temp_dir (fun dir ->
      let golden = Lazy.force hi_golden in
      let cold = run_cached ~dir golden in
      Alcotest.(check bool) "cold populated the store" false
        cold.Engine.cached;
      let journal =
        match Cache.entries ~dir with
        | [ e ] -> e.Cache.path
        | es ->
            Alcotest.failf "expected one store entry, found %d"
              (List.length es)
      in
      Alcotest.(check bool) "journal finished (compactable on merit)" true
        (Runcell.journal_finished journal);
      (* Unprotected compaction WOULD fold it (dry run proves intent)... *)
      let unprotected =
        Catalog.compact ~dry_run:true ~finished:Runcell.journal_finished ~dir
          ()
      in
      Alcotest.(check int) "dry run would fold the journal" 1
        unprotected.Catalog.folded;
      (* ...but the CLI's protected compaction keeps it. *)
      let protected_ =
        Catalog.compact ~finished:Runcell.journal_finished
          ~protect:(Cache.referenced ~dir) ~dir ()
      in
      Alcotest.(check int) "protected compaction folds nothing" 0
        protected_.Catalog.folded;
      Alcotest.(check bool) "journal file survives" true
        (Sys.file_exists journal);
      (* The store still serves it — the whole point of protection. *)
      let warm = run_cached ~dir golden in
      Alcotest.(check bool) "post-compaction warm run still hits" true
        warm.Engine.cached)

(* A cached journal that rots on disk (truncation, corruption) must
   degrade to a miss — never to a wrong scan. *)
let test_corrupt_cached_journal_degrades_to_miss () =
  with_temp_dir (fun dir ->
      let golden = Lazy.force hi_golden in
      let serial = Lazy.force hi_serial in
      let cold = run_cached ~dir golden in
      check_scans_identical "cold = serial" serial cold.Engine.scan;
      (match Cache.entries ~dir with
      | [ e ] ->
          let oc = open_out_bin e.Cache.path in
          output_string oc "fi-journal torn garbage\n";
          close_out oc
      | _ -> Alcotest.fail "expected one store entry");
      let warm = run_cached ~dir golden in
      Alcotest.(check bool) "rotten journal is a miss, not a hit" false
        warm.Engine.cached;
      check_scans_identical "re-run is still exact" serial warm.Engine.scan)

let suite =
  ( "cache",
    [
      Alcotest.test_case "cell keys: deterministic and collision-free" `Quick
        test_cell_key_distinct;
      Alcotest.test_case "lockfile: acquire, release, re-acquire" `Quick
        test_lockfile_roundtrip;
      Alcotest.test_case "lockfile: excludes a contending process" `Quick
        test_lockfile_excludes_across_processes;
      Alcotest.test_case "index: publish/lookup/garbage/referenced" `Quick
        test_publish_lookup_roundtrip;
      Alcotest.test_case "memory-space hit is bit-identical" `Quick
        test_memory_hit_bit_identical;
      Alcotest.test_case "register-space hit is bit-identical" `Quick
        test_register_hit_bit_identical;
      Alcotest.test_case "warm run executes zero shards" `Quick
        test_warm_run_executes_no_shards;
      Alcotest.test_case "quarantined campaigns are never published" `Quick
        test_quarantined_never_published;
      Alcotest.test_case "policy-distinct cells never collide" `Quick
        test_policy_keys_do_not_collide;
      Alcotest.test_case "compaction protects cache-referenced journals"
        `Quick test_compact_protects_cache_referenced_journals;
      Alcotest.test_case "corrupt cached journal degrades to a miss" `Quick
        test_corrupt_cached_journal_degrades_to_miss;
    ] )
