(* Tests for the fork/exec process backend (Pool.Processes): differential
   equivalence against the Domains backend and the serial scans, the
   unified jobs resolution, journal-corruption classification (torn tail
   vs storage corruption vs duplicate records), and one quick
   worker-crash round trip.  The slow/adversarial crash matrix lives in
   torture.ml behind the @torture alias. *)

let hi_golden = lazy (Golden.run (Hi.program ()))
let hi_serial = lazy (Scan.pruned (Lazy.force hi_golden))
let hi_regs = lazy (Regspace.analyze (Hi.program ()))
let flag1_golden = lazy (Golden.run (Flag1.baseline ()))
let flag1_serial = lazy (Scan.pruned (Lazy.force flag1_golden))

let check_scans_identical msg serial parallel =
  Alcotest.(check bool) (msg ^ " (structural)") true (serial = parallel);
  Alcotest.(check string)
    (msg ^ " (serialised)")
    (Csv_io.to_string serial)
    (Csv_io.to_string parallel)

let with_temp_file f =
  let path = Filename.temp_file "fiprocess" ".journal" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        (path :: List.init 32 (Printf.sprintf "%s.seg%d" path)))
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Unified jobs resolution and backend naming                         *)
(* ------------------------------------------------------------------ *)

let test_resolve_jobs () =
  Alcotest.(check int) "explicit" 3 (Pool.resolve_jobs ~jobs:3 ());
  Alcotest.(check int) "0 means all cores" (Pool.default_jobs ())
    (Pool.resolve_jobs ~jobs:0 ());
  Alcotest.(check int) "omitted means all cores" (Pool.default_jobs ())
    (Pool.resolve_jobs ());
  Alcotest.check_raises "negative"
    (Invalid_argument
       "Pool.resolve_jobs: negative job count -2 (use 0 for all cores)")
    (fun () -> ignore (Pool.resolve_jobs ~jobs:(-2) ()))

let test_backend_names () =
  List.iter
    (fun b ->
      Alcotest.(check bool) "tag roundtrip" true
        (Pool.backend_of_string (Pool.backend_tag b) = Some b))
    [ Pool.Domains; Pool.Processes ];
  Alcotest.(check bool) "unknown tag" true
    (Pool.backend_of_string "threads" = None)

(* ------------------------------------------------------------------ *)
(* Differential: Processes = Domains = serial                         *)
(* ------------------------------------------------------------------ *)

let test_processes_equal_serial_memory () =
  let serial = Lazy.force hi_serial in
  let spec = Spec.of_golden (Lazy.force hi_golden) in
  List.iter
    (fun jobs ->
      let proc = Engine.run_spec ~backend:Pool.Processes ~jobs spec in
      check_scans_identical
        (Printf.sprintf "hi processes -j %d = serial" jobs)
        serial proc;
      check_scans_identical
        (Printf.sprintf "hi processes -j %d = domains" jobs)
        (Engine.run_spec ~backend:Pool.Domains ~jobs spec)
        proc)
    [ 1; 2; 4 ]

let test_processes_equal_serial_registers () =
  let rs = Lazy.force hi_regs in
  let serial = Regspace.scan rs in
  List.iter
    (fun jobs ->
      check_scans_identical
        (Printf.sprintf "hi registers processes -j %d" jobs)
        serial
        (Engine.run_spec ~backend:Pool.Processes ~jobs (Spec.of_regspace rs)))
    [ 1; 2 ]

let test_processes_matrix () =
  let specs =
    [
      Spec.of_golden (Lazy.force hi_golden);
      Spec.of_regspace (Lazy.force hi_regs);
      Spec.of_golden (Lazy.force flag1_golden);
    ]
  in
  let serials =
    [
      Lazy.force hi_serial;
      Regspace.scan (Lazy.force hi_regs);
      Lazy.force flag1_serial;
    ]
  in
  let snap = ref None in
  let scans =
    Engine.run_matrix ~backend:Pool.Processes ~jobs:2
      ~observe:(fun s -> snap := Some s)
      specs
  in
  List.iteri
    (fun i (serial, scan) ->
      check_scans_identical (Printf.sprintf "matrix cell %d" i) serial scan)
    (List.combine serials scans);
  match !snap with
  | None -> Alcotest.fail "observe never called"
  | Some s ->
      Alcotest.(check bool) "finished" true (Progress.finished s);
      Alcotest.(check int) "all shards" s.Progress.shards_total
        s.Progress.shards_done

(* Engine under Processes == serial scan on random compiled MIR
   programs: the job crosses the exec boundary marshalled, so this also
   exercises spec marshalling on arbitrary programs. *)
let qcheck_processes_equal_serial =
  QCheck.Test.make ~name:"process backend equals serial on random programs"
    ~count:3
    QCheck.(pair (int_bound 1000) (int_range 1 3))
    (fun (seed, jobs) ->
      let open Builder in
      let k = 1 + (seed mod 4) in
      let source =
        prog
          ~name:(Printf.sprintf "prand%d" seed)
          [ global "acc" ~init:[ seed mod 9 ]; array "buf" 3 ~init:[ 3; 1; 4 ] ]
          [
            func "main" ~locals:[ "i" ]
              (for_ "i" ~from:(i 0) ~below:(i k)
                 [
                   setg "acc" (g "acc" +: elem "buf" (l "i" %: i 3));
                   set_elem "buf" (l "i" %: i 3) (g "acc" ^: i seed);
                 ]
              @ [ out (g "acc" &: i 255); ret_unit ]);
          ]
      in
      let golden = Golden.run (Codegen.compile source) in
      Scan.pruned golden
      = Engine.run_spec ~backend:Pool.Processes ~jobs (Spec.of_golden golden))

(* ------------------------------------------------------------------ *)
(* Journaled resume under the process backend                         *)
(* ------------------------------------------------------------------ *)

let policy ~journal ?(resume = false) ?shard_size () =
  Spec.make_policy ~journal ~resume ?shard_size ()

let test_processes_resume () =
  let serial = Lazy.force flag1_serial in
  let golden = Lazy.force flag1_golden in
  with_temp_file (fun path ->
      let full =
        Engine.run_spec ~backend:Pool.Processes ~jobs:2
          (Spec.of_golden ~policy:(policy ~journal:path ()) golden)
      in
      check_scans_identical "journaled process run" serial full;
      (* Cut the journal back to half its shards plus a torn tail. *)
      let text = read_file path in
      let lines = String.split_on_char '\n' text in
      let keep = 1 + ((List.length lines - 1) / 2) in
      write_file path
        (String.concat "\n" (List.filteri (fun i _ -> i < keep) lines)
        ^ "\nf00dfeed torn-shard-rec");
      let snap = ref None in
      let resumed =
        Engine.run_spec ~backend:Pool.Processes ~jobs:2
          ~observe:(fun s -> snap := Some s)
          (Spec.of_golden ~policy:(policy ~journal:path ~resume:true ()) golden)
      in
      check_scans_identical "process resume = uninterrupted" serial resumed;
      match !snap with
      | None -> Alcotest.fail "observe never called"
      | Some s ->
          Alcotest.(check bool) "recovered shards" true
            (s.Progress.resumed_classes > 0);
          Alcotest.(check int) "completed everything" s.Progress.classes_total
            s.Progress.classes_done)

(* ------------------------------------------------------------------ *)
(* Journal corruption taxonomy                                        *)
(* ------------------------------------------------------------------ *)

let journaled_run ?(shard_size = 1) () =
  with_temp_file (fun path ->
      ignore
        (Engine.run_spec ~jobs:1
           (Spec.of_golden
              ~policy:(policy ~journal:path ~shard_size ())
              (Lazy.force hi_golden)));
      read_file path)

let test_replay_classification () =
  with_temp_file (fun path ->
      let text = journaled_run () in
      write_file path text;
      (match Journal.replay path with
      | Some (_, records, Journal.Clean) ->
          Alcotest.(check int) "two shard records" 2 (List.length records)
      | _ -> Alcotest.fail "expected a clean replay");
      (* A crashed append leaves a torn (newline-less) tail. *)
      write_file path (text ^ "deadbeef par");
      (match Journal.replay path with
      | Some (_, _, Journal.Torn_tail n) ->
          Alcotest.(check int) "torn bytes" 12 n
      | _ -> Alcotest.fail "expected a torn tail");
      (* A complete line with a bad CRC is storage corruption. *)
      write_file path (text ^ "deadbeef bad-crc-line\n");
      match Journal.replay path with
      | Some (_, _, Journal.Corrupt_record { line }) ->
          Alcotest.(check int) "corrupt line" 4 line
      | _ -> Alcotest.fail "expected a corrupt record")

let test_resume_rejects_corrupt_journal () =
  let golden = Lazy.force hi_golden in
  with_temp_file (fun path ->
      let text = journaled_run () in
      (* Flip a byte inside the middle record's payload: every line is
         still complete, so this cannot be a crash artifact. *)
      let target = String.index text '\n' + 12 in
      write_file path
        (String.mapi (fun i c -> if i = target then 'X' else c) text);
      let resume () =
        ignore
          (Engine.run_spec ~jobs:1
             (Spec.of_golden
                ~policy:(policy ~journal:path ~resume:true ~shard_size:1 ())
                golden))
      in
      (match resume () with
      | () -> Alcotest.fail "expected Journal_mismatch on corruption"
      | exception Engine.Journal_mismatch msg ->
          Alcotest.(check bool) "names the line" true
            (String.length msg > 0)
      (* The corrupt journal was left untouched: resume must not have
         truncated the evidence away. *));
      match Journal.replay path with
      | Some (_, _, Journal.Corrupt_record _) -> ()
      | _ -> Alcotest.fail "corrupt journal was modified by failed resume")

let test_resume_rejects_duplicate_record () =
  let golden = Lazy.force hi_golden in
  with_temp_file (fun path ->
      let text = journaled_run () in
      (* Re-append the first shard record verbatim: CRC-valid, but the
         shard is already journalled. *)
      let first_record =
        match String.split_on_char '\n' text with
        | _header :: record :: _ -> record
        | _ -> Alcotest.fail "journal too short"
      in
      write_file path (text ^ first_record ^ "\n");
      match
        Engine.run_spec ~jobs:1
          (Spec.of_golden
             ~policy:(policy ~journal:path ~resume:true ~shard_size:1 ())
             golden)
      with
      | _ -> Alcotest.fail "expected Journal_mismatch on duplicate"
      | exception Engine.Journal_mismatch msg ->
          Alcotest.(check bool) "mentions duplicate" true
            (String.length msg > 0))

(* ------------------------------------------------------------------ *)
(* Quick crash round trip (the full matrix lives behind @torture)     *)
(* ------------------------------------------------------------------ *)

let with_torture value f =
  Unix.putenv Worker.torture_var value;
  Fun.protect ~finally:(fun () -> Unix.putenv Worker.torture_var "") f

let test_worker_crash_and_resume () =
  let serial = Lazy.force hi_serial in
  let golden = Lazy.force hi_golden in
  with_temp_file (fun path ->
      let spec resume =
        Spec.of_golden
          ~policy:(policy ~journal:path ~resume ~shard_size:1 ())
          golden
      in
      (* Worker 0 exits (code 7) before conducting anything; worker 1
         finishes its share.  The parent must report the death, keep the
         journal valid, and resume to the bit-identical result. *)
      (match
         with_torture "exit:0:0" (fun () ->
             Engine.run_spec ~backend:Pool.Processes ~jobs:2 (spec false))
       with
      | _ -> Alcotest.fail "expected Worker_failed"
      | exception Engine.Worker_failed msg ->
          Alcotest.(check bool) "reports exit code" true
            (String.length msg > 0));
      (match Journal.replay path with
      | Some (_, _, Journal.Clean) -> ()
      | _ -> Alcotest.fail "journal not CRC-valid after worker death");
      let resumed =
        Engine.run_spec ~backend:Pool.Processes ~jobs:2 (spec true)
      in
      check_scans_identical "crash + resume = serial" serial resumed)

let suite =
  ( "process-backend",
    [
      Alcotest.test_case "resolve_jobs is the single authority" `Quick
        test_resolve_jobs;
      Alcotest.test_case "backend names roundtrip" `Quick test_backend_names;
      Alcotest.test_case "processes = domains = serial (memory)" `Quick
        test_processes_equal_serial_memory;
      Alcotest.test_case "processes = serial (registers)" `Quick
        test_processes_equal_serial_registers;
      Alcotest.test_case "processes matrix" `Slow test_processes_matrix;
      QCheck_alcotest.to_alcotest qcheck_processes_equal_serial;
      Alcotest.test_case "processes journaled resume" `Slow
        test_processes_resume;
      Alcotest.test_case "replay classifies torn vs corrupt" `Quick
        test_replay_classification;
      Alcotest.test_case "resume rejects corrupt journal" `Quick
        test_resume_rejects_corrupt_journal;
      Alcotest.test_case "resume rejects duplicate record" `Quick
        test_resume_rejects_duplicate_record;
      Alcotest.test_case "worker crash + resume" `Quick
        test_worker_crash_and_resume;
    ] )
