(* Tests for the pluggable fault-model subsystem (lib/faultspace): tag
   codec stability, the legacy models re-homed behind the Faultspace API
   (differential against Scan.pruned / Regspace.scan on fixed and random
   programs, across backends and worker counts), burst/skip determinism,
   and fingerprint separation between models. *)

let hi_image = lazy (Hi.program ())
let hi_golden = lazy (Golden.run (Lazy.force hi_image))

let check_scans_identical msg serial parallel =
  Alcotest.(check bool) (msg ^ " (structural)") true (serial = parallel);
  Alcotest.(check string)
    (msg ^ " (serialised)")
    (Csv_io.to_string serial)
    (Csv_io.to_string parallel)

(* ------------------------------------------------------------------ *)
(* Tags: the stable campaign-identity codec                           *)
(* ------------------------------------------------------------------ *)

let test_tags () =
  let roundtrip m =
    match Faultspace.of_tag (Faultspace.tag m) with
    | Ok m' -> Alcotest.(check bool) (Faultspace.tag m) true (m = m')
    | Error e -> Alcotest.failf "tag %s does not parse: %s" (Faultspace.tag m) e
  in
  List.iter roundtrip
    [ Faultspace.Bitflip_mem; Faultspace.Bitflip_reg; Faultspace.burst 2;
      Faultspace.burst 8; Faultspace.burst ~row:2 3; Faultspace.burst ~row:7 4;
      Faultspace.Skip ];
  (* The legacy tags are load-bearing: journal fingerprints and cache
     keys of pre-subsystem campaigns must stay byte-identical. *)
  Alcotest.(check string) "mem tag" "mem" (Faultspace.tag Faultspace.Bitflip_mem);
  Alcotest.(check string) "reg tag" "reg" (Faultspace.tag Faultspace.Bitflip_reg);
  Alcotest.(check string) "burst tag" "burst3r2"
    (Faultspace.tag (Faultspace.burst ~row:2 3));
  Alcotest.(check bool) "legacy split" true
    (Faultspace.legacy Faultspace.Bitflip_mem
    && Faultspace.legacy Faultspace.Bitflip_reg
    && (not (Faultspace.legacy (Faultspace.burst 2)))
    && not (Faultspace.legacy Faultspace.Skip));
  List.iter
    (fun bad ->
      match Faultspace.of_tag bad with
      | Ok _ -> Alcotest.failf "tag %S must not parse" bad
      | Error _ -> ())
    [ ""; "memory"; "burst"; "burst1"; "burst9"; "burst4r1"; "burst4r9";
      "burst4r"; "burstxr2"; "skipper" ];
  List.iter
    (fun f -> try ignore (f ()); Alcotest.fail "must raise" with
       Invalid_argument _ -> ())
    [ (fun () -> Faultspace.burst 1); (fun () -> Faultspace.burst 9);
      (fun () -> Faultspace.burst ~row:1 4);
      (fun () -> Faultspace.burst ~row:8 4) ]

(* ------------------------------------------------------------------ *)
(* Legacy models behind the new API: bit-identical re-homing          *)
(* ------------------------------------------------------------------ *)

let test_mem_cell_matches_legacy () =
  let golden = Lazy.force hi_golden in
  let cell = Faultspace.of_golden Faultspace.Bitflip_mem golden in
  Alcotest.(check bool) "classes are the def/use partition" true
    (cell.Faultspace.classes = Defuse.experiment_classes golden.Golden.defuse);
  Alcotest.(check int) "benign weight"
    (Defuse.known_benign_weight golden.Golden.defuse)
    cell.Faultspace.benign_weight;
  Alcotest.(check int) "ram bytes"
    golden.Golden.program.Program.ram_size cell.Faultspace.ram_bytes;
  Alcotest.(check int) "experiments"
    (Defuse.experiment_count golden.Golden.defuse)
    (Faultspace.experiments cell)

let test_burst_shares_mem_partition () =
  (* A burst never leaves the addressed byte, so the def/use pruning —
     classes, weights, benign weight — is exactly the memory model's. *)
  let golden = Lazy.force hi_golden in
  let mem = Faultspace.of_golden Faultspace.Bitflip_mem golden in
  let b = Faultspace.of_golden (Faultspace.burst ~row:2 3) golden in
  Alcotest.(check bool) "same classes" true
    (mem.Faultspace.classes = b.Faultspace.classes);
  Alcotest.(check int) "same benign weight" mem.Faultspace.benign_weight
    b.Faultspace.benign_weight;
  Alcotest.(check int) "same ram bytes" mem.Faultspace.ram_bytes
    b.Faultspace.ram_bytes

(* Legacy spaces through the Faultspace-powered engine == the serial
   legacy conductors, on random compiled MIR programs, across worker
   counts and the in-process/fork-exec backends. *)
let qcheck_legacy_models_differential =
  QCheck.Test.make
    ~name:"faultspace mem/reg = legacy serial scans on random programs"
    ~count:3
    QCheck.(triple (int_bound 1000) (int_range 1 4) (int_range 1 9))
    (fun (seed, jobs, shard_size) ->
      let open Builder in
      let k = 1 + (seed mod 5) in
      let source =
        prog
          ~name:(Printf.sprintf "fsrand%d" seed)
          [ global "acc" ~init:[ seed mod 7 ]; array "buf" 3 ~init:[ 1; 2; 3 ] ]
          [
            func "main" ~locals:[ "i" ]
              (for_ "i" ~from:(i 0) ~below:(i k)
                 [
                   setg "acc" (g "acc" +: elem "buf" (l "i" %: i 3));
                   set_elem "buf" (l "i" %: i 3) (g "acc" ^: i seed);
                 ]
              @ [ out (g "acc" &: i 255); ret_unit ]);
          ]
      in
      let image = Codegen.compile source in
      let golden = Golden.run image in
      let r = Regspace.analyze image in
      let policy = Spec.make_policy ~shard_size () in
      let mem_serial = Scan.pruned golden in
      let reg_serial = Regspace.scan r in
      List.for_all
        (fun backend ->
          mem_serial
          = Engine.run_spec ~backend ~jobs
              (Spec.of_golden ~policy ~model:Faultspace.Bitflip_mem golden)
          && reg_serial
             = Engine.run_spec ~backend ~jobs (Spec.of_regspace ~policy r))
        [ Pool.Domains; Pool.Processes ])

(* ------------------------------------------------------------------ *)
(* Instruction skip: machine-level semantics                          *)
(* ------------------------------------------------------------------ *)

let test_skip_next_semantics () =
  let image = Lazy.force hi_image in
  let m = Machine.create image in
  (* Skipping the first instruction must advance pc and cycle without
     executing it: no register writes, no stores, no output. *)
  let pc0 = Machine.pc m and cyc0 = Machine.cycle m in
  let regs0 = Array.init 16 (fun r -> Machine.reg m (Isa.reg r)) in
  Machine.skip_next m;
  Alcotest.(check int) "pc advanced" (pc0 + 1) (Machine.pc m);
  Alcotest.(check int) "cycle burned" (cyc0 + 1) (Machine.cycle m);
  Array.iteri
    (fun r v ->
      Alcotest.(check int32)
        (Printf.sprintf "r%d untouched" r)
        v
        (Machine.reg m (Isa.reg r)))
    regs0;
  Alcotest.(check string) "no output" "" (Machine.serial_output m);
  (* The skipped program still terminates (the machine keeps stepping
     from the next instruction). *)
  ignore (Machine.run m ~limit:100_000);
  Alcotest.(check bool) "terminates" true (Machine.stopped m <> None)

(* ------------------------------------------------------------------ *)
(* Skip and burst through the engine: geometry and determinism        *)
(* ------------------------------------------------------------------ *)

let test_skip_cell_geometry () =
  let golden = Lazy.force hi_golden in
  let cell = Faultspace.of_golden Faultspace.Skip golden in
  let cycles = golden.Golden.cycles in
  let n = Array.length cell.Faultspace.classes in
  Alcotest.(check int) "ceil(cycles/8) classes" ((cycles + 7) / 8) n;
  Alcotest.(check int) "synthetic row footprint" n cell.Faultspace.ram_bytes;
  Alcotest.(check int) "no a-priori pruning" 0 cell.Faultspace.benign_weight;
  Alcotest.(check int) "8 slots per class" (8 * n)
    (Faultspace.experiments cell);
  Array.iteri
    (fun i (c : Defuse.byte_class) ->
      if not (c.Defuse.byte = i && c.Defuse.t_start = (8 * i) + 1
              && c.Defuse.t_end = c.Defuse.t_start
              && c.Defuse.kind = Defuse.Experiment) then
        Alcotest.failf "class %d malformed" i)
    cell.Faultspace.classes

let skip_scan_serial = lazy
  (Engine.run_spec ~jobs:1 (Spec.of_golden ~model:Faultspace.Skip (Lazy.force hi_golden)))

let test_skip_campaign () =
  let golden = Lazy.force hi_golden in
  let serial = Lazy.force skip_scan_serial in
  let cycles = golden.Golden.cycles in
  let padding = (8 * ((cycles + 7) / 8)) - cycles in
  Alcotest.(check int) "one experiment per cycle (plus padding)"
    (cycles + padding)
    (Array.length serial.Scan.experiments);
  (* Padding slots past the golden runtime are benign by construction. *)
  let no_effect =
    Array.fold_left
      (fun n (e : Scan.experiment) ->
        if e.Scan.outcome = Outcome.No_effect then n + 1 else n)
      0 serial.Scan.experiments
  in
  Alcotest.(check bool) "padding is No_effect" true (no_effect >= padding);
  (* Skipping instructions of a working program must break something —
     an all-benign skip campaign would mean the conductor never actually
     skipped. *)
  Alcotest.(check bool) "some skips matter" true
    (Array.exists
       (fun (e : Scan.experiment) -> e.Scan.outcome <> Outcome.No_effect)
       serial.Scan.experiments)

let test_new_models_deterministic () =
  (* Burst and skip campaigns must be bit-identical across worker counts
     and across the in-process and fork/exec backends. *)
  let golden = Lazy.force hi_golden in
  List.iter
    (fun model ->
      let spec () =
        Spec.of_golden ~policy:(Spec.make_policy ~shard_size:4 ()) ~model
          golden
      in
      let tag = Faultspace.tag model in
      let serial = Engine.run_spec ~jobs:1 (spec ()) in
      List.iter
        (fun jobs ->
          check_scans_identical
            (Printf.sprintf "%s domains -j %d" tag jobs)
            serial
            (Engine.run_spec ~jobs (spec ())))
        [ 2; 4 ];
      check_scans_identical
        (Printf.sprintf "%s processes -j 2" tag)
        serial
        (Engine.run_spec ~backend:Pool.Processes ~jobs:2 (spec ())))
    [ Faultspace.burst 2; Faultspace.burst ~row:2 3; Faultspace.Skip ]

let test_new_models_over_sockets () =
  (* One remote round per new model: the wire job carries the model, the
     daemon re-analyses and must agree bit-for-bit. *)
  match Remote.spawn_daemon ~workers:2 () with
  | Error e -> Alcotest.fail e
  | Ok (pid, addr) ->
      Fun.protect
        ~finally:(fun () -> Remote.kill_daemon pid)
        (fun () ->
          let golden = Lazy.force hi_golden in
          List.iter
            (fun model ->
              let spec () =
                Spec.of_golden ~policy:(Spec.make_policy ~shard_size:4 ())
                  ~model golden
              in
              check_scans_identical
                (Printf.sprintf "%s sockets" (Faultspace.tag model))
                (Engine.run_spec ~jobs:1 (spec ()))
                (Engine.run_spec
                   ~backend:(Pool.Sockets [ Addr.to_string addr ])
                   ~jobs:2 (spec ())))
            [ Faultspace.burst 2; Faultspace.Skip ])

(* ------------------------------------------------------------------ *)
(* Fingerprints: the model is part of the campaign identity           *)
(* ------------------------------------------------------------------ *)

let test_model_fingerprints_distinct () =
  let golden = Lazy.force hi_golden in
  let fp model = Engine.fingerprint_spec (Spec.of_golden ~model golden) in
  let fps =
    List.map fp
      [ Faultspace.Bitflip_mem; Faultspace.burst 2; Faultspace.burst 3;
        Faultspace.burst ~row:2 3; Faultspace.Skip ]
  in
  let distinct = List.sort_uniq compare fps in
  Alcotest.(check int) "all models fingerprint apart" (List.length fps)
    (List.length distinct)

let suite =
  ( "faultspace",
    [
      Alcotest.test_case "model tags roundtrip and validate" `Quick test_tags;
      Alcotest.test_case "mem cell = legacy def/use partition" `Quick
        test_mem_cell_matches_legacy;
      Alcotest.test_case "burst shares the mem partition" `Quick
        test_burst_shares_mem_partition;
      QCheck_alcotest.to_alcotest qcheck_legacy_models_differential;
      Alcotest.test_case "skip_next machine semantics" `Quick
        test_skip_next_semantics;
      Alcotest.test_case "skip cell geometry" `Quick test_skip_cell_geometry;
      Alcotest.test_case "skip campaign conducts every cycle" `Quick
        test_skip_campaign;
      Alcotest.test_case "burst/skip deterministic across backends" `Slow
        test_new_models_deterministic;
      Alcotest.test_case "burst/skip over the sockets backend" `Slow
        test_new_models_over_sockets;
      Alcotest.test_case "model fingerprints distinct" `Quick
        test_model_fingerprints_distinct;
    ] )
