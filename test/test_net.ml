(* Tests for the socket transport and the distributed (Pool.Sockets)
   backend: frame/handshake/wire-job codecs and their corruption
   rejection, endpoint parsing, the -j semantics for remote hosts, and
   loopback differential equivalence — a campaign conducted by remote
   worker daemons must be bit-identical to the Processes, Domains and
   serial conductors, including after a daemon vanishes mid-campaign
   and the journal is healed with --resume.  The slow/adversarial
   network crash matrix lives in torture.ml behind @torture. *)

let contains = Astring_contains.contains
let hi_golden = lazy (Golden.run (Hi.program ()))
let hi_serial = lazy (Scan.pruned (Lazy.force hi_golden))
let hi_regs = lazy (Regspace.analyze (Hi.program ()))
let flag1_golden = lazy (Golden.run (Flag1.baseline ()))
let flag1_serial = lazy (Scan.pruned (Lazy.force flag1_golden))

let check_scans_identical msg serial parallel =
  Alcotest.(check bool) (msg ^ " (structural)") true (serial = parallel);
  Alcotest.(check string)
    (msg ^ " (serialised)")
    (Csv_io.to_string serial)
    (Csv_io.to_string parallel)

let with_temp_file f =
  let path = Filename.temp_file "finet" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let with_daemon ?(workers = 2) f =
  match Remote.spawn_daemon ~workers () with
  | Error e -> Alcotest.fail e
  | Ok (pid, addr) ->
      Fun.protect ~finally:(fun () -> Remote.kill_daemon pid) (fun () -> f addr)

let sockets_of addr = Pool.Sockets [ Addr.to_string addr ]

(* ------------------------------------------------------------------ *)
(* Endpoint addresses                                                 *)
(* ------------------------------------------------------------------ *)

let test_addr () =
  (match Addr.parse "127.0.0.1:9000" with
  | Ok { Addr.host = "127.0.0.1"; port = 9000 } -> ()
  | _ -> Alcotest.fail "dotted quad");
  Alcotest.(check string)
    "roundtrip" "node7:80"
    (Addr.to_string (Addr.parse_exn "node7:80"));
  (* IPv6 literals: bracketed form parses (brackets stripped), bare form
     is rejected — its last hextet would be misread as the port. *)
  (match Addr.parse "[::1]:9000" with
  | Ok { Addr.host = "::1"; port = 9000 } -> ()
  | _ -> Alcotest.fail "bracketed v6 loopback");
  Alcotest.(check string)
    "v6 roundtrip re-brackets" "[fe80::1]:80"
    (Addr.to_string (Addr.parse_exn "[fe80::1]:80"));
  (match Addr.parse "::1" with
  | Error msg ->
      Alcotest.(check bool) "bare v6 error points at brackets" true
        (Astring_contains.contains msg "[HOST]:PORT")
  | Ok _ -> Alcotest.fail "bare v6 literal must not parse");
  List.iter
    (fun s ->
      match Addr.parse s with
      | Ok _ -> Alcotest.failf "parsed %S" s
      | Error _ -> ())
    [
      ""; "nohost"; ":80"; "h:"; "h:0x50"; "h:-1"; "h:65536"; "[::1]";
      "[::1]80"; "[]:80"; "[::1:80";
    ];
  (match Addr.parse_list "a:1,b:2, c:3 ," with
  | Ok [ a; b; c ] ->
      Alcotest.(check (list string))
        "list" [ "a:1"; "b:2"; "c:3" ]
        (List.map Addr.to_string [ a; b; c ])
  | _ -> Alcotest.fail "list of three");
  match Addr.parse_list " , " with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty list must not parse"

(* ------------------------------------------------------------------ *)
(* Frame codec                                                        *)
(* ------------------------------------------------------------------ *)

let test_frame_roundtrip () =
  let frames =
    [
      (Frame.Hello, "fi-net hello");
      (Frame.Job, String.init 4096 (fun i -> Char.chr (i land 0xff)));
      (Frame.Door, "s 12");
      (Frame.Seg, "deadbeef payload");
      (Frame.Err, "");
    ]
  in
  let wire =
    String.concat "" (List.map (fun (k, p) -> Frame.encode k p) frames)
  in
  (* Byte-at-a-time feeding: TCP preserves order, not boundaries. *)
  let d = Frame.decoder () in
  let got = ref [] in
  String.iter
    (fun c ->
      Frame.feed_string d (String.make 1 c);
      let rec drain () =
        match Frame.next d with
        | Some f ->
            got := f :: !got;
            drain ()
        | None -> ()
      in
      drain ())
    wire;
  Alcotest.(check bool) "all frames back" true (List.rev !got = frames);
  Alcotest.(check int) "nothing buffered" 0 (Frame.buffered d)

let test_frame_rejects_corruption () =
  let expect_corrupt what wire =
    let d = Frame.decoder () in
    Frame.feed_string d wire;
    let rec drain () = match Frame.next d with Some _ -> drain () | None -> () in
    match drain () with
    | () -> Alcotest.failf "%s: accepted" what
    | exception Frame.Corrupt _ -> ()
  in
  let good = Frame.encode Frame.Seg "a CRC-guarded record line" in
  (* Flip one payload byte: the length still matches, the CRC cannot. *)
  let flipped =
    String.mapi
      (fun i c ->
        if i = String.length good - 3 then Char.chr (Char.code c lxor 0x40)
        else c)
      good
  in
  expect_corrupt "payload bit flip" flipped;
  expect_corrupt "unknown kind" ("\255" ^ String.sub good 1 (String.length good - 1));
  (* A length claim past the cap must be rejected from the header alone,
     before anyone tries to buffer 2 GiB. *)
  let oversized = Bytes.of_string (String.sub good 0 Frame.header_len) in
  Bytes.set_int32_be oversized 1 0x7fffffffl;
  expect_corrupt "oversized claim" (Bytes.to_string oversized)

(* Fuzzing the incremental decoder.  Two properties:

   1. Split-invariance: however a wire image is sliced into feed
      chunks, the decoder yields exactly the one-shot frame sequence —
      TCP segmentation can never change what is decoded.

   2. Corruption safety: flip any one byte of the wire image and the
      decoder either raises {!Frame.Corrupt} or yields a strict prefix
      of the original frames (when the flip lands in a frame whose
      header hasn't been consumed yet, everything before it already
      decoded).  It must NEVER successfully decode a sequence that
      differs from the original — that would be a mis-parse, the thing
      the kind-covering CRC exists to rule out. *)
let gen_frames =
  QCheck.Gen.(
    let kind =
      oneofl
        [ Frame.Hello; Frame.Job; Frame.Door; Frame.Seg; Frame.Err;
          Frame.Submit; Frame.Stat; Frame.Prog; Frame.Res ]
    in
    let payload = string_size ~gen:char (int_bound 48) in
    list_size (int_range 1 6) (pair kind payload))

let decode_all wire ~cuts =
  (* [cuts] positions split the wire into feed chunks. *)
  let d = Frame.decoder () in
  let got = ref [] in
  let n = String.length wire in
  let bounds = List.sort_uniq compare (0 :: n :: List.map (fun c -> c mod (n + 1)) cuts) in
  let rec pairs = function
    | a :: (b :: _ as rest) ->
        Frame.feed_string d (String.sub wire a (b - a));
        let rec drain () =
          match Frame.next d with
          | Some f ->
              got := f :: !got;
              drain ()
          | None -> ()
        in
        drain ();
        pairs rest
    | _ -> ()
  in
  pairs bounds;
  (List.rev !got, Frame.buffered d)

let qcheck_frame_split_invariance =
  QCheck.Test.make ~name:"frame decode is feed-split invariant" ~count:300
    QCheck.(
      make
        Gen.(pair gen_frames (list_size (int_bound 12) (int_bound 10_000))))
    (fun (frames, cuts) ->
      let wire =
        String.concat "" (List.map (fun (k, p) -> Frame.encode k p) frames)
      in
      let got, buffered = decode_all wire ~cuts in
      got = frames && buffered = 0)

let qcheck_frame_mutation_never_misparses =
  QCheck.Test.make
    ~name:"one flipped byte: Corrupt or strict prefix, never a mis-parse"
    ~count:500
    QCheck.(
      make Gen.(triple gen_frames (int_bound 100_000) (int_range 1 255)))
    (fun (frames, pos_seed, flip) ->
      let wire =
        String.concat "" (List.map (fun (k, p) -> Frame.encode k p) frames)
      in
      let pos = pos_seed mod String.length wire in
      let mutated =
        String.mapi
          (fun i c -> if i = pos then Char.chr (Char.code c lxor flip) else c)
          wire
      in
      let rec prefix xs ys =
        match (xs, ys) with
        | [], _ -> true
        | x :: xs', y :: ys' -> x = y && prefix xs' ys'
        | _ -> false
      in
      match decode_all mutated ~cuts:[] with
      | got, _ ->
          (* Decoded without an alarm: only acceptable if it is a
             strict prefix (the flip must be hiding in still-buffered
             bytes — a header whose frame never completed). *)
          prefix got frames && List.length got < List.length frames
      | exception Frame.Corrupt _ -> true)

(* ------------------------------------------------------------------ *)
(* Handshake                                                          *)
(* ------------------------------------------------------------------ *)

let test_handshake () =
  let mine = Handshake.hello ~fingerprint:"cafe1234" ~capacity:3 () in
  (match Handshake.decode (Handshake.encode mine) with
  | Some h -> Alcotest.(check bool) "roundtrip" true (h = mine)
  | None -> Alcotest.fail "decode");
  Alcotest.(check bool) "self-check passes" true
    (Handshake.check ~mine ~theirs:mine () = Ok ());
  (match Handshake.check ~mine ~theirs:{ mine with Handshake.version = 999 } () with
  | Error msg ->
      Alcotest.(check bool) "names version" true
        (String.length msg > 0)
  | Ok () -> Alcotest.fail "version mismatch accepted");
  (match
     Handshake.check ~mine
       ~theirs:{ mine with Handshake.digest = String.make 32 '0' }
       ()
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "digest mismatch accepted");
  (* Two unhashable binaries must not pass as identical: "unknown" on
     either side is a refusal, never a match. *)
  let unknown = { mine with Handshake.digest = "unknown" } in
  (match Handshake.check ~mine:unknown ~theirs:unknown () with
  | Error msg ->
      Alcotest.(check bool) "unknown = unknown refused" true
        (Astring_contains.contains msg "unavailable")
  | Ok () -> Alcotest.fail "two unknown digests accepted");
  (match Handshake.check ~mine ~theirs:unknown () with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "peer's unknown digest accepted");
  Alcotest.(check bool) "garbage rejected" true
    (Handshake.decode "fi-net hullo version=one" = None)

(* ------------------------------------------------------------------ *)
(* Shared-secret authentication                                       *)
(* ------------------------------------------------------------------ *)

(* HMAC-MD5 against the RFC 2202 test vectors: short key, text key, a
   key longer than the 64-byte block (hashed first). *)
let test_hmac_vectors () =
  let check_vec name ~key msg expect =
    Alcotest.(check string) name expect (Hmac.mac ~key msg)
  in
  check_vec "rfc2202 #1" ~key:(String.make 16 '\x0b') "Hi There"
    "9294727a3638bb1c13f48ef8158bfc9d";
  check_vec "rfc2202 #2" ~key:"Jefe" "what do ya want for nothing?"
    "750c783e6ab0b503eaa86e310a5db738";
  check_vec "rfc2202 #3" ~key:(String.make 16 '\xaa') (String.make 50 '\xdd')
    "56be34521d144c88dbb8c733f0e8b3f6";
  check_vec "rfc2202 #6 (key > block)" ~key:(String.make 80 '\xaa')
    "Test Using Larger Than Block-Size Key - Hash Key First"
    "6b1ab7fe4bd7bf8f0b62e6ce61b9d0cd";
  Alcotest.(check bool) "verify accepts the right tag" true
    (Hmac.verify ~key:"Jefe" "what do ya want for nothing?"
       "750c783e6ab0b503eaa86e310a5db738");
  Alcotest.(check bool) "verify rejects a wrong tag" false
    (Hmac.verify ~key:"Jefe" "what do ya want for nothing?"
       "750c783e6ab0b503eaa86e310a5db739")

(* Each of the three auth failure modes has its own error, so the
   operator knows which end to fix. *)
let test_handshake_auth () =
  let secret = "squeamish ossifrage" in
  let armed = Handshake.hello ~secret () in
  let bare = Handshake.hello () in
  Alcotest.(check bool) "armed hello carries a tag" true
    (armed.Handshake.mac <> "");
  (match Handshake.decode (Handshake.encode armed) with
  | Some h -> Alcotest.(check bool) "tag survives the wire" true (h = armed)
  | None -> Alcotest.fail "armed hello does not decode");
  Alcotest.(check bool) "both armed: accepted" true
    (Handshake.check ~secret ~mine:armed ~theirs:armed () = Ok ());
  (match Handshake.check ~secret ~mine:armed ~theirs:bare () with
  | Error msg ->
      Alcotest.(check bool) "unarmed peer: error says peer sent no tag" true
        (contains msg "no auth tag")
  | Ok () -> Alcotest.fail "unarmed peer accepted by armed end");
  (match Handshake.check ~mine:bare ~theirs:armed () with
  | Error msg ->
      Alcotest.(check bool)
        "armed peer, unarmed self: error says a secret is required" true
        (contains msg "requires a shared secret")
  | Ok () -> Alcotest.fail "armed peer accepted by unarmed end");
  let wrong = Handshake.hello ~secret:"wrong" () in
  (match Handshake.check ~secret ~mine:armed ~theirs:wrong () with
  | Error msg ->
      Alcotest.(check bool) "wrong secret: error says mismatch" true
        (contains msg "mismatch")
  | Ok () -> Alcotest.fail "wrong secret accepted");
  (* A tag computed over a TAMPERED hello must not verify: the mac
     covers the whole identity (version, digest, fingerprint). *)
  let forged = { armed with Handshake.fingerprint = "beefbeef" } in
  match Handshake.check ~secret ~mine:armed ~theirs:forged () with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "tampered armed hello accepted"

(* End-to-end: a worker daemon started with --secret refuses the
   unarmed and mis-armed, conducts for the properly armed. *)
let test_worker_daemon_auth () =
  let secret_file = Filename.temp_file "finet" ".key" in
  let oc = open_out secret_file in
  output_string oc "  open sesame \n";
  close_out oc;
  Fun.protect
    ~finally:(fun () -> try Sys.remove secret_file with Sys_error _ -> ())
    (fun () ->
      match Remote.spawn_daemon ~workers:2 ~secret_file () with
      | Error e -> Alcotest.fail e
      | Ok (pid, addr) ->
          Fun.protect
            ~finally:(fun () -> Remote.kill_daemon pid)
            (fun () ->
              (match Remote.probe addr with
              | Error msg ->
                  Alcotest.(check bool) "unarmed probe refused with reason"
                    true
                    (contains msg "secret")
              | Ok _ -> Alcotest.fail "unarmed probe accepted");
              (match Remote.probe ~secret:"wrong" addr with
              | Error msg ->
                  Alcotest.(check bool) "wrong-secret probe says mismatch"
                    true (contains msg "mismatch")
              | Ok _ -> Alcotest.fail "wrong-secret probe accepted");
              (* load_secret trims whitespace: the armed probe and a
                 whole campaign go through. *)
              (match Hmac.load_secret secret_file with
              | Error msg -> Alcotest.failf "load_secret failed: %s" msg
              | Ok s -> Alcotest.(check string) "trimmed" "open sesame" s);
              let secret = "open sesame" in
              (match Remote.probe ~secret addr with
              | Ok _ -> ()
              | Error msg -> Alcotest.failf "armed probe refused: %s" msg);
              let result =
                Engine.run_spec_result ~backend:(sockets_of addr) ~jobs:2
                  ~secret
                  (Spec.of_golden (Lazy.force hi_golden))
              in
              check_scans_identical "authenticated campaign = serial"
                (Lazy.force hi_serial) result.Engine.scan))

(* ------------------------------------------------------------------ *)
(* Wire job codec                                                     *)
(* ------------------------------------------------------------------ *)

let test_wire_job () =
  let spec = Spec.of_golden (Lazy.force hi_golden) in
  let job =
    Remote.wire_of_spec spec
      ~program:(Remote.program_of_spec spec)
      ~fingerprint:0x1234abcd ~shard_ids:[| 2; 0; 5 |] ~index:7
  in
  (match Remote.decode_job (Remote.encode_job job) with
  | Some j ->
      Alcotest.(check bool) "roundtrip" true (j = job);
      (* The re-built spec must analyse to the same fingerprint as the
         conductor's — the property the worker-side refusal rests on. *)
      Alcotest.(check int) "re-analysis agrees"
        (Engine.fingerprint_spec spec)
        (Engine.fingerprint_spec (Remote.spec_of_wire j))
  | None -> Alcotest.fail "roundtrip decode");
  Alcotest.(check bool) "wrong magic rejected" true
    (Remote.decode_job ("fi-wire v0\n" ^ String.make 40 'x') = None);
  Alcotest.(check bool) "truncation rejected" true
    (Remote.decode_job (String.sub (Remote.encode_job job) 0 24) = None)

(* ------------------------------------------------------------------ *)
(* -j semantics for remote hosts                                      *)
(* ------------------------------------------------------------------ *)

let test_resolve_jobs_sockets () =
  let sockets = Pool.Sockets [ "h:1" ] in
  Alcotest.(check int) "0 defers to the daemons" 0
    (Pool.resolve_jobs ~backend:sockets ~jobs:0 ());
  Alcotest.(check int) "omitted defers to the daemons" 0
    (Pool.resolve_jobs ~backend:sockets ());
  Alcotest.(check int) "positive bounds per-host concurrency" 3
    (Pool.resolve_jobs ~backend:sockets ~jobs:3 ());
  Alcotest.check_raises "negative"
    (Invalid_argument
       "Pool.resolve_jobs: negative job count -2 (use 0 to let each worker \
        daemon decide)")
    (fun () -> ignore (Pool.resolve_jobs ~backend:sockets ~jobs:(-2) ()));
  Alcotest.(check bool) "tag roundtrip" true
    (Pool.backend_of_string (Pool.backend_tag sockets) = Some (Pool.Sockets []));
  match
    Engine.run_spec ~backend:(Pool.Sockets [])
      (Spec.of_golden (Lazy.force hi_golden))
  with
  | _ -> Alcotest.fail "Sockets [] must be rejected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Handshake rejection over a real connection                         *)
(* ------------------------------------------------------------------ *)

(* A fake daemon that speaks exactly one scripted reply: how the client
   side's refusal paths are exercised without building a broken real
   daemon.  It runs on a domain, not a forked child — Unix.fork is
   unavailable once earlier suites have spawned domains. *)
let with_fake_server respond f =
  match Transport.listen { Addr.host = "127.0.0.1"; port = 0 } with
  | Error e -> Alcotest.fail e
  | Ok (lfd, addr) ->
      let server =
        Domain.spawn (fun () ->
            match Transport.accept lfd with
            | conn ->
                (try respond conn with _ -> ());
                Transport.close conn
            | exception _ -> ())
      in
      Fun.protect
        ~finally:(fun () ->
          (* Unblock accept if the client never connected. *)
          (match Transport.connect ~timeout:1. addr with
          | Ok c -> Transport.close c
          | Error _ -> ());
          Sysio.close_quietly lfd;
          Domain.join server)
        (fun () -> f addr)

let expect_probe_error what respond check_msg =
  with_fake_server respond (fun addr ->
      match Remote.probe addr with
      | Ok _ -> Alcotest.failf "%s: probe accepted" what
      | Error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: error mentions it (%s)" what msg)
            true (check_msg msg))

let test_probe_rejects_bad_peers () =
  let reply h conn =
    (match Transport.recv ~timeout:5. conn with
    | Some (Frame.Hello, _) -> ()
    | _ -> failwith "no hello");
    Transport.send conn Frame.Hello (Handshake.encode h)
  in
  let me = Handshake.hello () in
  expect_probe_error "protocol version"
    (reply { me with Handshake.version = 999 })
    (fun m -> contains m "version");
  expect_probe_error "foreign binary"
    (reply { me with Handshake.digest = String.make 32 'f' })
    (fun m -> contains m "binar" || contains m "digest");
  expect_probe_error "frame garbage"
    (fun conn ->
      ignore (Transport.recv ~timeout:5. conn);
      Sysio.write_string (Transport.fd conn) "HTTP/1.1 400 Bad Request\r\n")
    (fun _ -> true);
  expect_probe_error "immediate close"
    (fun _ -> ())
    (fun m -> contains m "closed")

(* ------------------------------------------------------------------ *)
(* Receive deadline is a whole-frame budget                           *)
(* ------------------------------------------------------------------ *)

(* A slow loris dribbles one byte per interval, each arrival comfortably
   inside a naive per-read timeout: only an absolute whole-frame
   deadline can cut it off.  Regression test for Frame.recv applying
   ?timeout per wait_readable call. *)
let test_recv_whole_frame_deadline () =
  let prev = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigpipe prev)
    (fun () ->
      let frame = Frame.encode Frame.Door "h" in
      with_fake_server
        (fun conn ->
          (* Never complete the frame; keep feeding until the client
             hangs up (EPIPE under SIGPIPE-ignore ends the loop). *)
          String.iteri
            (fun i c ->
              if i < String.length frame - 1 then begin
                Sysio.write_string (Transport.fd conn) (String.make 1 c);
                Unix.sleepf 0.2
              end)
            frame)
        (fun addr ->
          match Transport.connect ~timeout:1. addr with
          | Error e -> Alcotest.fail e
          | Ok conn ->
              let t0 = Unix.gettimeofday () in
              (match Transport.recv ~timeout:0.5 conn with
              | exception Frame.Corrupt _ -> ()
              | _ -> Alcotest.fail "dribbled partial frame did not time out");
              let dt = Unix.gettimeofday () -. t0 in
              Transport.close conn;
              Alcotest.(check bool)
                (Printf.sprintf "timed out on total budget (%.2fs)" dt)
                true
                (dt < 1.4)))

(* ------------------------------------------------------------------ *)
(* Loopback differential: Sockets = Processes = Domains = serial      *)
(* ------------------------------------------------------------------ *)

let test_sockets_equal_serial_memory () =
  let serial = Lazy.force hi_serial in
  let spec = Spec.of_golden (Lazy.force hi_golden) in
  with_daemon (fun addr ->
      (* -j 1 and 2 bound per-host concurrency; 0 adopts the daemon's
         advertised capacity. *)
      List.iter
        (fun jobs ->
          let sock =
            Engine.run_spec ~backend:(sockets_of addr) ~jobs spec
          in
          check_scans_identical
            (Printf.sprintf "hi sockets -j %d = serial" jobs)
            serial sock;
          check_scans_identical
            (Printf.sprintf "hi sockets -j %d = processes" jobs)
            (Engine.run_spec ~backend:Pool.Processes ~jobs:2 spec)
            sock;
          check_scans_identical
            (Printf.sprintf "hi sockets -j %d = domains" jobs)
            (Engine.run_spec ~backend:Pool.Domains ~jobs:2 spec)
            sock)
        [ 1; 2; 0 ])

let test_sockets_equal_serial_registers () =
  let rs = Lazy.force hi_regs in
  let serial = Regspace.scan rs in
  with_daemon (fun addr ->
      check_scans_identical "hi registers sockets = serial" serial
        (Engine.run_spec ~backend:(sockets_of addr) ~jobs:2
           (Spec.of_regspace rs)))

let test_sockets_matrix () =
  let specs =
    [
      Spec.of_golden (Lazy.force hi_golden);
      Spec.of_regspace (Lazy.force hi_regs);
      Spec.of_golden (Lazy.force flag1_golden);
    ]
  in
  let serials =
    [
      Lazy.force hi_serial;
      Regspace.scan (Lazy.force hi_regs);
      Lazy.force flag1_serial;
    ]
  in
  with_daemon (fun addr ->
      let snap = ref None in
      let scans =
        Engine.run_matrix ~backend:(sockets_of addr) ~jobs:2
          ~observe:(fun s -> snap := Some s)
          specs
      in
      List.iteri
        (fun i (serial, scan) ->
          check_scans_identical
            (Printf.sprintf "sockets matrix cell %d" i)
            serial scan)
        (List.combine serials scans);
      match !snap with
      | None -> Alcotest.fail "observe never called"
      | Some s ->
          Alcotest.(check bool) "finished" true (Progress.finished s);
          Alcotest.(check int) "all shards" s.Progress.shards_total
            s.Progress.shards_done)

(* ------------------------------------------------------------------ *)
(* Remote crash + resume (the full matrix lives behind @torture)      *)
(* ------------------------------------------------------------------ *)

let with_torture value f =
  Unix.putenv Worker.torture_var value;
  Fun.protect ~finally:(fun () -> Unix.putenv Worker.torture_var "") f

let test_remote_crash_and_resume () =
  let serial = Lazy.force hi_serial in
  let golden = Lazy.force hi_golden in
  with_temp_file (fun path ->
      let spec resume =
        Spec.of_golden
          ~policy:(Spec.make_policy ~journal:path ~resume ~shard_size:1 ())
          golden
      in
      (* The daemon inherits the torture env: remote worker 0 dies
         before conducting anything, worker 1 finishes its share.  The
         unsupervised default policy reports the death and keeps the
         journal valid. *)
      with_torture "exit:0:0" (fun () ->
          with_daemon (fun addr ->
              match
                Engine.run_spec ~backend:(sockets_of addr) ~jobs:2 (spec false)
              with
              | _ -> Alcotest.fail "expected Worker_failed"
              | exception Engine.Worker_failed msg ->
                  Alcotest.(check bool) "names the remote worker" true
                    (contains msg "remote worker")));
      (match Journal.replay path with
      | Some (_, _, Journal.Clean) -> ()
      | _ -> Alcotest.fail "journal not CRC-valid after remote death");
      (* The crashed daemon is gone; a fresh fleet heals the campaign. *)
      with_daemon (fun addr ->
          let resumed =
            Engine.run_spec ~backend:(sockets_of addr) ~jobs:2 (spec true)
          in
          check_scans_identical "remote crash + resume = serial" serial
            resumed))

let suite =
  ( "net-backend",
    [
      Alcotest.test_case "addresses parse and reject" `Quick test_addr;
      Alcotest.test_case "frames roundtrip through a byte stream" `Quick
        test_frame_roundtrip;
      Alcotest.test_case "frames reject corruption" `Quick
        test_frame_rejects_corruption;
      QCheck_alcotest.to_alcotest qcheck_frame_split_invariance;
      QCheck_alcotest.to_alcotest qcheck_frame_mutation_never_misparses;
      Alcotest.test_case "handshake rejects mismatches" `Quick test_handshake;
      Alcotest.test_case "hmac-md5 matches RFC 2202 vectors" `Quick
        test_hmac_vectors;
      Alcotest.test_case "handshake auth: distinct failure modes" `Quick
        test_handshake_auth;
      Alcotest.test_case "worker daemon --secret end-to-end" `Quick
        test_worker_daemon_auth;
      Alcotest.test_case "wire jobs roundtrip without closures" `Quick
        test_wire_job;
      Alcotest.test_case "-j bounds per-host concurrency" `Quick
        test_resolve_jobs_sockets;
      Alcotest.test_case "probe rejects wrong peers" `Quick
        test_probe_rejects_bad_peers;
      Alcotest.test_case "recv deadline spans the whole frame" `Quick
        test_recv_whole_frame_deadline;
      Alcotest.test_case "sockets = processes = domains = serial (memory)"
        `Slow test_sockets_equal_serial_memory;
      Alcotest.test_case "sockets = serial (registers)" `Slow
        test_sockets_equal_serial_registers;
      Alcotest.test_case "sockets matrix" `Slow test_sockets_matrix;
      Alcotest.test_case "remote crash + resume" `Slow
        test_remote_crash_and_resume;
    ] )
