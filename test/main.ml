let () =
  Alcotest.run "fipitfalls"
    [
      Test_prng.suite;
      Test_stats.suite;
      Test_isa.suite;
      Test_machine.suite;
      Test_trace.suite;
      Test_campaign.suite;
      Test_engine.suite;
      Test_matrix.suite;
      Test_mir.suite;
      Test_kernel.suite;
      Test_optimize.suite;
      Test_core.suite;
      Test_regspace.suite;
      Test_report.suite;
      Test_extensions.suite;
      Test_more.suite;
      Test_breakdown.suite;
    ]
