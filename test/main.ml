let () =
  (* Before anything else: if this process was exec'd as a campaign
     worker (the process backend re-execs the hosting binary) or as a
     remote-worker daemon (the sockets backend does the same), serve
     instead of running the test suite. *)
  Worker.guard ();
  Remote.guard ();
  Service.guard ();
  (* Test-only re-exec helpers: cross-process contenders spawned by
     the cache-lock and concurrent-client tests (Unix.fork is
     unavailable once domains have run in this binary). *)
  Test_cache.helper_guard ();
  Test_service.helper_guard ();
  Alcotest.run "fipitfalls"
    [
      Test_prng.suite;
      Test_stats.suite;
      Test_isa.suite;
      Test_machine.suite;
      Test_trace.suite;
      Test_campaign.suite;
      Test_checkpoint.suite;
      Test_engine.suite;
      Test_matrix.suite;
      Test_faultspace.suite;
      Test_process.suite;
      Test_net.suite;
      Test_supervision.suite;
      Test_mir.suite;
      Test_kernel.suite;
      Test_optimize.suite;
      Test_core.suite;
      Test_regspace.suite;
      Test_report.suite;
      Test_extensions.suite;
      Test_more.suite;
      Test_breakdown.suite;
      Test_cache.suite;
      Test_service.suite;
      Test_fuzz.suite;
    ]
