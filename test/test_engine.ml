(* Tests for the parallel campaign engine (lib/engine): CRC32 vectors,
   shard-plan invariants, the Domain pool, journal durability semantics,
   and the headline guarantees — a parallel campaign is bit-identical to
   the serial Scan.pruned for any worker count, and a journaled campaign
   killed partway resumes to the identical result without re-conducting
   finished shards. *)

(* ------------------------------------------------------------------ *)
(* Fixtures                                                           *)
(* ------------------------------------------------------------------ *)

let hi_golden = lazy (Golden.run (Hi.program ()))
let hi_serial = lazy (Scan.pruned (Lazy.force hi_golden))
let flag1_golden = lazy (Golden.run (Flag1.baseline ()))
let flag1_serial = lazy (Scan.pruned (Lazy.force flag1_golden))

let check_scans_identical msg serial parallel =
  (* Structural equality covers every field; CSV text equality pins the
     byte-for-byte claim. *)
  Alcotest.(check bool) (msg ^ " (structural)") true (serial = parallel);
  Alcotest.(check string)
    (msg ^ " (serialised)")
    (Csv_io.to_string serial)
    (Csv_io.to_string parallel)

let with_temp_file f =
  let path = Filename.temp_file "fiengine" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* CRC32                                                              *)
(* ------------------------------------------------------------------ *)

let test_crc32_vectors () =
  (* The catalogue check value for CRC-32/ISO-HDLC. *)
  Alcotest.(check int) "123456789" 0xcbf43926 (Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.string "");
  Alcotest.(check string) "hex" "cbf43926" (Crc32.to_hex 0xcbf43926);
  Alcotest.(check (option int)) "hex roundtrip" (Some 0xcbf43926)
    (Crc32.of_hex "cbf43926");
  Alcotest.(check (option int)) "bad hex" None (Crc32.of_hex "xyz");
  Alcotest.(check (option int)) "short hex" None (Crc32.of_hex "cbf439")

let test_crc32_streaming () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let split = 17 in
  let chained =
    Crc32.update
      (Crc32.update 0 s ~pos:0 ~len:split)
      s ~pos:split
      ~len:(String.length s - split)
  in
  Alcotest.(check int) "chained = whole" (Crc32.string s) chained

(* ------------------------------------------------------------------ *)
(* Shard plans                                                        *)
(* ------------------------------------------------------------------ *)

let test_shard_plan_invariants () =
  let defuse = (Lazy.force flag1_golden).Golden.defuse in
  let classes = Defuse.experiment_classes defuse in
  List.iter
    (fun shard_size ->
      let plan = Shard.plan ~shard_size classes in
      let total = Array.length classes in
      Alcotest.(check int) "covers all classes" total plan.Shard.classes_total;
      (* order is a permutation of 0..total-1 *)
      let seen = Array.make total false in
      Array.iter (fun i -> seen.(i) <- true) plan.Shard.order;
      Alcotest.(check bool) "order is a permutation" true
        (Array.for_all Fun.id seen);
      (* shards are contiguous, ordered, and cover every rank exactly once *)
      let covered = ref 0 in
      Array.iteri
        (fun i (s : Shard.t) ->
          Alcotest.(check int) "dense ids" i s.Shard.id;
          Alcotest.(check int) "contiguous" !covered s.Shard.lo;
          Alcotest.(check bool) "non-empty" true (Shard.classes_in s > 0);
          Alcotest.(check bool) "sized" true (Shard.classes_in s <= shard_size);
          covered := s.Shard.hi;
          (* the checkpoint invariant: t_end non-decreasing within a shard *)
          for rank = s.Shard.lo + 1 to s.Shard.hi - 1 do
            let t_end r = classes.(plan.Shard.order.(r)).Defuse.t_end in
            if t_end rank < t_end (rank - 1) then
              Alcotest.failf "shard %d: t_end decreases at rank %d" i rank
          done)
        plan.Shard.shards;
      Alcotest.(check int) "all ranks covered" total !covered)
    [ 1; 7; 100; 100_000 ]

let test_shard_plan_errors () =
  let defuse = (Lazy.force hi_golden).Golden.defuse in
  Alcotest.check_raises "shard_size 0" (Invalid_argument "Shard.plan: shard_size 0")
    (fun () -> ignore (Shard.plan ~shard_size:0 (Defuse.experiment_classes defuse)));
  Alcotest.(check int) "default size floor" 1 (Shard.default_shard_size ~classes:0)

(* ------------------------------------------------------------------ *)
(* Pool                                                               *)
(* ------------------------------------------------------------------ *)

let test_pool_runs_all_tasks () =
  List.iter
    (fun jobs ->
      let hits = Array.make 100 0 in
      Pool.run ~jobs ~tasks:100 (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool)
        (Printf.sprintf "each task once (jobs %d)" jobs)
        true
        (Array.for_all (fun n -> n = 1) hits))
    [ 1; 2; 4; 9 ]

let test_pool_propagates_exception () =
  let ran = Atomic.make 0 in
  (match
     Pool.run ~jobs:3 ~tasks:50 (fun i ->
         ignore (Atomic.fetch_and_add ran 1);
         if i = 7 then failwith "boom")
   with
  | () -> Alcotest.fail "expected exception"
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg);
  Alcotest.(check bool) "stopped early" true (Atomic.get ran <= 50)

let test_pool_bad_args () =
  Alcotest.check_raises "jobs 0" (Invalid_argument "Pool.run: jobs 0")
    (fun () -> Pool.run ~jobs:0 ~tasks:1 ignore);
  Alcotest.check_raises "tasks -1" (Invalid_argument "Pool.run: tasks -1")
    (fun () -> Pool.run ~jobs:1 ~tasks:(-1) ignore)

(* ------------------------------------------------------------------ *)
(* Journal                                                            *)
(* ------------------------------------------------------------------ *)

let test_journal_roundtrip () =
  with_temp_file (fun path ->
      let w = Journal.create path ~header:"header v1" in
      Journal.append w "alpha";
      Journal.append w "beta gamma";
      Journal.close w;
      match Journal.load path with
      | None -> Alcotest.fail "load failed"
      | Some (header, records) ->
          Alcotest.(check string) "header" "header v1" header;
          Alcotest.(check (list string)) "records" [ "alpha"; "beta gamma" ]
            records)

let test_journal_rejects_newline () =
  with_temp_file (fun path ->
      let w = Journal.create path ~header:"h" in
      Fun.protect
        ~finally:(fun () -> Journal.close w)
        (fun () ->
          Alcotest.check_raises "newline"
            (Invalid_argument "Journal.append: payload contains a newline")
            (fun () -> Journal.append w "two\nlines")))

let append_raw path text =
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc text;
  close_out oc

let test_journal_tolerates_torn_tail () =
  with_temp_file (fun path ->
      let w = Journal.create path ~header:"h" in
      Journal.append w "complete";
      Journal.close w;
      (* A crash mid-write leaves a partial line. *)
      append_raw path "deadbeef par";
      (match Journal.load path with
      | Some (h, records) ->
          Alcotest.(check string) "header" "h" h;
          Alcotest.(check (list string)) "torn tail dropped" [ "complete" ]
            records
      | None -> Alcotest.fail "load failed");
      (* open_resume truncates the torn tail and appends cleanly. *)
      (match Journal.open_resume path with
      | Some (w, _, records) ->
          Alcotest.(check int) "records survive" 1 (List.length records);
          Journal.append w "after-resume";
          Journal.close w
      | None -> Alcotest.fail "open_resume failed");
      match Journal.load path with
      | Some (_, records) ->
          Alcotest.(check (list string)) "clean append after truncation"
            [ "complete"; "after-resume" ] records
      | None -> Alcotest.fail "reload failed")

let test_journal_detects_corruption () =
  with_temp_file (fun path ->
      let w = Journal.create path ~header:"h" in
      Journal.append w "first";
      Journal.append w "second";
      Journal.close w;
      (* Flip one byte inside the second record's payload. *)
      let text =
        let ic = open_in_bin path in
        let t = really_input_string ic (in_channel_length ic) in
        close_in ic;
        t
      in
      let pos = String.length text - 3 in
      let corrupted =
        String.mapi (fun i c -> if i = pos then 'X' else c) text
      in
      let oc = open_out_bin path in
      output_string oc corrupted;
      close_out oc;
      match Journal.load path with
      | Some (_, records) ->
          Alcotest.(check (list string)) "suffix dropped at corruption"
            [ "first" ] records
      | None -> Alcotest.fail "load failed")

let test_journal_missing_file () =
  Alcotest.(check bool) "missing file" true
    (Journal.load "/nonexistent/fi.journal" = None)

(* ------------------------------------------------------------------ *)
(* Engine: parallel == serial                                         *)
(* ------------------------------------------------------------------ *)

let test_parallel_equals_serial_hi () =
  let golden = Lazy.force hi_golden in
  let serial = Lazy.force hi_serial in
  List.iter
    (fun jobs ->
      check_scans_identical
        (Printf.sprintf "hi -j %d" jobs)
        serial
        (Engine.run ~jobs golden))
    [ 1; 2; 4 ]

let test_parallel_equals_serial_flag1 () =
  let golden = Lazy.force flag1_golden in
  let serial = Lazy.force flag1_serial in
  List.iter
    (fun jobs ->
      check_scans_identical
        (Printf.sprintf "flag1 -j %d" jobs)
        serial
        (Engine.run ~jobs golden))
    [ 1; 2; 4 ]

let test_shard_size_irrelevant () =
  let golden = Lazy.force hi_golden in
  let serial = Lazy.force hi_serial in
  List.iter
    (fun shard_size ->
      check_scans_identical
        (Printf.sprintf "hi shard_size %d" shard_size)
        serial
        (Engine.run ~jobs:2 ~shard_size golden))
    [ 1; 3; 1000 ]

(* Engine == serial on random compiled MIR programs with random shard
   geometry and worker counts. *)
let qcheck_engine_equals_serial =
  QCheck.Test.make ~name:"engine equals serial scan on random programs"
    ~count:4
    QCheck.(triple (int_bound 1000) (int_range 1 4) (int_range 1 9))
    (fun (seed, jobs, shard_size) ->
      let open Builder in
      let k = 1 + (seed mod 5) in
      let source =
        prog
          ~name:(Printf.sprintf "erand%d" seed)
          [ global "acc" ~init:[ seed mod 7 ]; array "buf" 3 ~init:[ 1; 2; 3 ] ]
          [
            func "main" ~locals:[ "i" ]
              (for_ "i" ~from:(i 0) ~below:(i k)
                 [
                   setg "acc" (g "acc" +: elem "buf" (l "i" %: i 3));
                   set_elem "buf" (l "i" %: i 3) (g "acc" ^: i seed);
                 ]
              @ [ out (g "acc" &: i 255); ret_unit ]);
          ]
      in
      let golden = Golden.run (Codegen.compile source) in
      Scan.pruned golden = Engine.run ~jobs ~shard_size golden)

let test_engine_progress_interface () =
  let golden = Lazy.force hi_golden in
  let calls = ref 0 in
  let last_done = ref 0 in
  let snapshots = ref [] in
  ignore
    (Engine.run ~jobs:1
       ~progress:(fun ~done_ ~total ~tally ->
         incr calls;
         Alcotest.(check bool) "done_ monotonic" true (done_ > !last_done);
         last_done := done_;
         Alcotest.(check int) "total" 2 total;
         Alcotest.(check int) "tally tracks done_" (8 * done_)
           (Outcome.tally_total tally))
       ~observe:(fun snap -> snapshots := snap :: !snapshots)
       golden);
  Alcotest.(check int) "one progress call per class" 2 !calls;
  Alcotest.(check int) "final done_" 2 !last_done;
  match !snapshots with
  | [] -> Alcotest.fail "observe never called"
  | final :: _ ->
      Alcotest.(check bool) "finished" true (Progress.finished final);
      Alcotest.(check int) "all experiments" 16 final.Progress.experiments_done;
      Alcotest.(check int) "no resumed classes" 0 final.Progress.resumed_classes;
      Alcotest.(check int) "shards" final.Progress.shards_total
        final.Progress.shards_done;
      (* the render line is a single line and mentions the class count *)
      let line = Progress.render final in
      Alcotest.(check bool) "render single line" false (String.contains line '\n')

let test_engine_bad_args () =
  let golden = Lazy.force hi_golden in
  (* jobs 0 means "all cores" — Pool.resolve_jobs is the single
     authority for both the engine and the CLI, so only negative counts
     are rejected, with Pool's own message. *)
  check_scans_identical "jobs 0 = all cores" (Lazy.force hi_serial)
    (Engine.run ~jobs:0 golden);
  Alcotest.check_raises "jobs -1"
    (Invalid_argument
       "Pool.resolve_jobs: negative job count -1 (use 0 for all cores)")
    (fun () -> ignore (Engine.run ~jobs:(-1) golden));
  Alcotest.check_raises "resume without journal"
    (Invalid_argument "Engine.run: ~resume requires ~journal") (fun () ->
      ignore (Engine.run ~resume:true golden))

(* ------------------------------------------------------------------ *)
(* Engine: journaled resume                                           *)
(* ------------------------------------------------------------------ *)

let truncate_journal_to path ~records =
  (* Keep the header plus [records] records, then simulate a torn tail. *)
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let lines = String.split_on_char '\n' text in
  let kept = List.filteri (fun i _ -> i <= records) lines in
  let oc = open_out_bin path in
  List.iter (fun l -> output_string oc (l ^ "\n")) kept;
  output_string oc "f00dfeed torn-shard-rec";
  close_out oc

let test_resume_truncated_journal () =
  let golden = Lazy.force flag1_golden in
  let serial = Lazy.force flag1_serial in
  with_temp_file (fun path ->
      (* Full journaled run, then cut the journal back mid-campaign. *)
      let full = Engine.run ~jobs:2 ~journal:path golden in
      check_scans_identical "journaled run" serial full;
      let total_shards =
        match Journal.load path with
        | Some (_, records) -> List.length records
        | None -> Alcotest.fail "journal unreadable"
      in
      Alcotest.(check bool) "has shards" true (total_shards > 2);
      let keep = total_shards / 2 in
      truncate_journal_to path ~records:keep;
      (* Resume: must recover exactly the kept shards and conduct only
         the rest. *)
      let final_snapshot = ref None in
      let resumed =
        Engine.run ~jobs:2 ~journal:path ~resume:true
          ~observe:(fun s -> final_snapshot := Some s)
          golden
      in
      check_scans_identical "resumed = uninterrupted" serial resumed;
      (match !final_snapshot with
      | None -> Alcotest.fail "observe never called"
      | Some s ->
          Alcotest.(check bool) "recovered shards without re-conducting" true
            (s.Progress.resumed_classes > 0);
          Alcotest.(check int) "completed everything" s.Progress.classes_total
            s.Progress.classes_done);
      (* After the resumed run the journal is complete again: resuming
         once more conducts nothing. *)
      let snap = ref None in
      let again =
        Engine.run ~jobs:2 ~journal:path ~resume:true
          ~observe:(fun s -> snap := Some s)
          golden
      in
      check_scans_identical "fully-journaled rerun" serial again;
      match !snap with
      | Some s ->
          Alcotest.(check int) "zero conducted on complete journal"
            s.Progress.classes_total s.Progress.resumed_classes
      | None -> Alcotest.fail "observe never called")

exception Killed

let test_resume_after_crash () =
  (* Kill the campaign from inside (the progress callback raises once
     enough classes are done) and verify the journal's durable prefix
     resumes to the identical result. *)
  let golden = Lazy.force flag1_golden in
  let serial = Lazy.force flag1_serial in
  with_temp_file (fun path ->
      let classes_at_kill = ref 0 in
      (match
         Engine.run ~jobs:2 ~journal:path
           ~progress:(fun ~done_ ~total ~tally:_ ->
             if done_ > total / 3 then begin
               classes_at_kill := done_;
               raise Killed
             end)
           golden
       with
      | _ -> Alcotest.fail "expected the campaign to be killed"
      | exception Killed -> ());
      Alcotest.(check bool) "killed partway" true (!classes_at_kill > 0);
      (* The journal survived the crash with a valid prefix. *)
      let shards_before =
        match Journal.load path with
        | Some (_, records) -> List.length records
        | None -> Alcotest.fail "journal lost after crash"
      in
      let snap = ref None in
      let resumed =
        Engine.run ~jobs:2 ~journal:path ~resume:true
          ~observe:(fun s -> snap := Some s)
          golden
      in
      check_scans_identical "crash + resume = uninterrupted" serial resumed;
      match !snap with
      | Some s ->
          Alcotest.(check bool) "resumed the durable shards" true
            (shards_before = 0 || s.Progress.resumed_classes > 0)
      | None -> Alcotest.fail "observe never called")

let test_resume_wrong_campaign () =
  let golden_hi = Lazy.force hi_golden in
  let golden_flag1 = Lazy.force flag1_golden in
  with_temp_file (fun path ->
      ignore (Engine.run ~jobs:1 ~journal:path golden_hi);
      (match Engine.run ~jobs:1 ~journal:path ~resume:true golden_flag1 with
      | _ -> Alcotest.fail "expected Journal_mismatch"
      | exception Engine.Journal_mismatch _ -> ());
      (* A different shard geometry is a different campaign, too. *)
      match
        Engine.run ~jobs:1 ~shard_size:1000 ~journal:path ~resume:true
          golden_hi
      with
      | _ -> Alcotest.fail "expected Journal_mismatch (shard_size)"
      | exception Engine.Journal_mismatch _ -> ())

let test_resume_missing_journal_starts_fresh () =
  let golden = Lazy.force hi_golden in
  with_temp_file (fun path ->
      Sys.remove path;
      let scan = Engine.run ~jobs:1 ~journal:path ~resume:true golden in
      check_scans_identical "fresh despite --resume" (Lazy.force hi_serial) scan;
      Alcotest.(check bool) "journal created" true (Sys.file_exists path))

(* ------------------------------------------------------------------ *)
(* Oracle samplers agree with conducting samplers                     *)
(* ------------------------------------------------------------------ *)

let check_estimates_agree msg (a : Sampler.estimate) (b : Sampler.estimate) =
  Alcotest.(check int) (msg ^ " population") a.Sampler.population b.Sampler.population;
  Alcotest.(check int) (msg ^ " samples") a.Sampler.samples b.Sampler.samples;
  Alcotest.(check int) (msg ^ " failures") a.Sampler.failures b.Sampler.failures;
  Alcotest.(check bool) (msg ^ " outcome counts") true
    (a.Sampler.outcome_counts = b.Sampler.outcome_counts)

let test_oracle_samplers_agree () =
  let golden = Lazy.force flag1_golden in
  let scan = Lazy.force flag1_serial in
  let conducted =
    Sampler.uniform_raw (Prng.create ~seed:11L) ~samples:1500 golden
  in
  let oracle =
    Sampler.uniform_raw_oracle (Prng.create ~seed:11L) ~samples:1500 scan
  in
  check_estimates_agree "uniform" conducted oracle;
  Alcotest.(check int) "oracle conducts nothing" 0 oracle.Sampler.conducted;
  let conducted_b =
    Sampler.biased_per_class (Prng.create ~seed:12L) ~samples:800 golden
  in
  let oracle_b =
    Sampler.biased_per_class_oracle (Prng.create ~seed:12L) ~samples:800 golden
      scan
  in
  check_estimates_agree "biased" conducted_b oracle_b

let suite =
  ( "engine",
    [
      Alcotest.test_case "crc32 vectors" `Quick test_crc32_vectors;
      Alcotest.test_case "crc32 streaming" `Quick test_crc32_streaming;
      Alcotest.test_case "shard plan invariants" `Quick
        test_shard_plan_invariants;
      Alcotest.test_case "shard plan errors" `Quick test_shard_plan_errors;
      Alcotest.test_case "pool runs all tasks" `Quick test_pool_runs_all_tasks;
      Alcotest.test_case "pool propagates exceptions" `Quick
        test_pool_propagates_exception;
      Alcotest.test_case "pool bad arguments" `Quick test_pool_bad_args;
      Alcotest.test_case "journal roundtrip" `Quick test_journal_roundtrip;
      Alcotest.test_case "journal rejects newlines" `Quick
        test_journal_rejects_newline;
      Alcotest.test_case "journal tolerates torn tail" `Quick
        test_journal_tolerates_torn_tail;
      Alcotest.test_case "journal detects corruption" `Quick
        test_journal_detects_corruption;
      Alcotest.test_case "journal missing file" `Quick test_journal_missing_file;
      Alcotest.test_case "parallel = serial (hi, j 1/2/4)" `Quick
        test_parallel_equals_serial_hi;
      Alcotest.test_case "parallel = serial (flag1, j 1/2/4)" `Slow
        test_parallel_equals_serial_flag1;
      Alcotest.test_case "shard size irrelevant" `Quick test_shard_size_irrelevant;
      QCheck_alcotest.to_alcotest qcheck_engine_equals_serial;
      Alcotest.test_case "engine progress interface" `Quick
        test_engine_progress_interface;
      Alcotest.test_case "engine bad arguments" `Quick test_engine_bad_args;
      Alcotest.test_case "resume from truncated journal" `Slow
        test_resume_truncated_journal;
      Alcotest.test_case "resume after crash" `Slow test_resume_after_crash;
      Alcotest.test_case "resume rejects foreign journal" `Quick
        test_resume_wrong_campaign;
      Alcotest.test_case "resume without journal file" `Quick
        test_resume_missing_journal_starts_fresh;
      Alcotest.test_case "oracle samplers agree" `Slow test_oracle_samplers_agree;
    ] )
