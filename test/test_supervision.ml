(* Tests for the self-healing supervision layer: heartbeat/deadline hang
   detection, bounded retry with backoff, shard quarantine, supervision
   journal records, the journal-catalogue compaction that rides on
   [Runcell.journal_finished], and the Domains-pool stall watchdog.
   Every process-backend test here is deliberately fast (sub-second
   deadlines on the two-class [hi] campaign); the slow adversarial
   crash × hang × retry × resume matrix lives in torture.ml behind
   @torture. *)

let contains = Astring_contains.contains
let hi_golden = lazy (Golden.run (Hi.program ()))
let hi_serial = lazy (Scan.pruned (Lazy.force hi_golden))

let check_scans_identical msg serial parallel =
  Alcotest.(check bool) (msg ^ " (structural)") true (serial = parallel);
  Alcotest.(check string)
    (msg ^ " (serialised)")
    (Csv_io.to_string serial)
    (Csv_io.to_string parallel)

let with_temp_file f =
  let path = Filename.temp_file "fisup" ".journal" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        (path :: List.init 32 (Printf.sprintf "%s.seg%d" path)))
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

let with_torture value f =
  Unix.putenv Worker.torture_var value;
  Fun.protect ~finally:(fun () -> Unix.putenv Worker.torture_var "") f

(* A supervising policy over per-class shards: [hi] has exactly two
   experiment classes, so [shard_size = 1] yields shards 0 and 1. *)
let sup_policy ?journal ?(resume = false) ?shard_timeout ?(max_retries = 2)
    ?(quarantine = false) () =
  Spec.make_policy ?journal ~resume ~shard_size:1 ?shard_timeout ~max_retries
    ~quarantine ()

(* ------------------------------------------------------------------ *)
(* Supervision journal records                                        *)
(* ------------------------------------------------------------------ *)

let test_supervision_payload_roundtrip () =
  let roundtrip s =
    Runcell.parse_supervision (Runcell.supervision_payload s)
  in
  let retry =
    Runcell.Retry
      { shard = 3; attempt = 2; cause = "was killed by SIGKILL" }
  in
  Alcotest.(check bool) "retry roundtrips" true (roundtrip retry = Some retry);
  let quarantine =
    Runcell.Quarantine
      {
        shard = 7;
        attempts = 3;
        cause = "hung (no heartbeat for 1.2s, deadline 0.3s)";
      }
  in
  Alcotest.(check bool) "quarantine roundtrips (cause with spaces)" true
    (roundtrip quarantine = Some quarantine);
  (* Newlines would tear the journal's line framing: sanitized away. *)
  (match
     roundtrip (Runcell.Retry { shard = 0; attempt = 1; cause = "a\nb" })
   with
  | Some (Runcell.Retry { cause; _ }) ->
      Alcotest.(check string) "newline sanitized" "a b" cause
  | _ -> Alcotest.fail "sanitized retry did not parse");
  (* Ordinary shard payloads are not supervision records. *)
  Alcotest.(check bool) "shard payload rejected" true
    (Runcell.parse_supervision "shard=0 lo=0 n=4 deadbeef" = None);
  Alcotest.(check bool) "garbage rejected" true
    (Runcell.parse_supervision "sup retry shard=x attempt=y cause=z" = None)

(* ------------------------------------------------------------------ *)
(* Deadline kills: hung and stalled workers                           *)
(* ------------------------------------------------------------------ *)

(* Worker spawn index 0 wedges silently before conducting anything; the
   supervisor must detect the missing heartbeat inside [shard_timeout],
   SIGKILL it, and a retry worker (fresh spawn index, so the torture no
   longer matches) completes the campaign bit-identically — with no
   manual --resume. *)
let heal_round_trip ~torture ~expect_reason () =
  let serial = Lazy.force hi_serial in
  let golden = Lazy.force hi_golden in
  let events = ref [] in
  let snap = ref None in
  let result =
    with_torture torture (fun () ->
        Engine.run_spec_result ~backend:Pool.Processes ~jobs:2
          ~observe:(fun s -> snap := Some s)
          ~on_event:(fun msg -> events := msg :: !events)
          (Spec.of_golden
             ~policy:(sup_policy ~shard_timeout:0.3 ())
             golden))
  in
  check_scans_identical "healed campaign = serial" serial result.Engine.scan;
  Alcotest.(check int) "nothing quarantined" 0
    (List.length result.Engine.quarantined);
  let all_events = String.concat "\n" !events in
  Alcotest.(check bool) "kill event names the reason" true
    (contains all_events expect_reason && contains all_events "SIGKILLed");
  match !snap with
  | None -> Alcotest.fail "observe never called"
  | Some s ->
      Alcotest.(check bool) "kills counted" true (s.Progress.kills >= 1);
      Alcotest.(check bool) "retries counted" true (s.Progress.retries >= 1);
      Alcotest.(check bool) "finished" true (Progress.finished s)

let test_hang_detection () =
  heal_round_trip ~torture:"hang:0:0" ~expect_reason:"hung" ()

let test_stall_detection () =
  heal_round_trip ~torture:"stall:0:0" ~expect_reason:"stalled" ()

(* A worker that crashes outright (no deadline needed) is retried the
   same way: the transient fault heals without --resume. *)
let test_transient_crash_heals () =
  let serial = Lazy.force hi_serial in
  let golden = Lazy.force hi_golden in
  let snap = ref None in
  let result =
    with_torture "exit:0:0" (fun () ->
        Engine.run_spec_result ~backend:Pool.Processes ~jobs:2
          ~observe:(fun s -> snap := Some s)
          (Spec.of_golden ~policy:(sup_policy ()) golden))
  in
  check_scans_identical "healed crash = serial" serial result.Engine.scan;
  Alcotest.(check int) "nothing quarantined" 0
    (List.length result.Engine.quarantined);
  match !snap with
  | None -> Alcotest.fail "observe never called"
  | Some s ->
      Alcotest.(check bool) "retries counted" true (s.Progress.retries >= 1);
      Alcotest.(check int) "no deadline kills" 0 s.Progress.kills

(* ------------------------------------------------------------------ *)
(* Quarantine: a deterministically poisoned shard                     *)
(* ------------------------------------------------------------------ *)

(* [poison:1] SIGKILLs any worker the moment it starts conducting plan
   shard 1 — the fault follows the shard through every retry, which is
   exactly the case quarantine exists for.  The campaign must complete,
   return exact results for shard 0, isolate shard 1 with its budget
   and cause, journal the decision, and a later --resume without the
   poison must heal to the bit-identical serial scan. *)
let test_poison_quarantine_and_resume () =
  let serial = Lazy.force hi_serial in
  let golden = Lazy.force hi_golden in
  with_temp_file (fun path ->
      let degraded =
        with_torture "poison:1" (fun () ->
            Engine.run_spec_result ~backend:Pool.Processes ~jobs:2
              (Spec.of_golden
                 ~policy:
                   (sup_policy ~journal:path ~max_retries:1 ~quarantine:true
                      ())
                 golden))
      in
      (match degraded.Engine.quarantined with
      | [ q ] ->
          Alcotest.(check int) "poisoned shard isolated" 1 q.Engine.q_shard;
          Alcotest.(check int) "budget fully burned" 2 q.Engine.q_attempts;
          Alcotest.(check int) "one class carried" 1 q.Engine.q_classes;
          Alcotest.(check int) "class coordinates reported" 1
            (Array.length q.Engine.q_class_indices);
          Alcotest.(check bool) "cause names the signal" true
            (contains q.Engine.q_cause "SIGKILL");
          (* Every class outside the quarantined shard is still exact. *)
          let excluded = q.Engine.q_class_indices in
          let total = Array.length serial.Scan.experiments / 8 in
          for ci = 0 to total - 1 do
            if not (Array.exists (( = ) ci) excluded) then
              Alcotest.(check bool)
                (Printf.sprintf "class %d exact despite quarantine" ci)
                true
                (Array.sub degraded.Engine.scan.Scan.experiments (8 * ci) 8
                = Array.sub serial.Scan.experiments (8 * ci) 8)
          done
      | qs ->
          Alcotest.fail
            (Printf.sprintf "expected exactly one quarantined shard, got %d"
               (List.length qs)));
      (* The decision is journaled... *)
      let text = read_file path in
      Alcotest.(check bool) "quarantine record journaled" true
        (contains text "sup quarantine shard=1");
      Alcotest.(check bool) "retry record journaled" true
        (contains text "sup retry shard=1 attempt=1");
      (* ...and a quarantine-degraded journal is NOT finished — resume
         can still heal it, so compaction must keep it. *)
      Alcotest.(check bool) "degraded journal not finished" false
        (Runcell.journal_finished path);
      (* Resume without the poison: bit-identical, nothing isolated. *)
      let healed =
        Engine.run_spec_result ~backend:Pool.Processes ~jobs:2
          (Spec.of_golden
             ~policy:
               (sup_policy ~journal:path ~resume:true ~max_retries:1
                  ~quarantine:true ())
             golden)
      in
      check_scans_identical "resume heals quarantine" serial
        healed.Engine.scan;
      Alcotest.(check int) "quarantine cleared on resume" 0
        (List.length healed.Engine.quarantined);
      Alcotest.(check bool) "healed journal finished" true
        (Runcell.journal_finished path))

(* The scan-only entry points must never hand back a silently degraded
   scan: any quarantine surfaces as Worker_failed. *)
let test_scan_only_raises_on_quarantine () =
  let golden = Lazy.force hi_golden in
  match
    with_torture "poison:1" (fun () ->
        Engine.run_spec ~backend:Pool.Processes ~jobs:2
          (Spec.of_golden
             ~policy:(sup_policy ~max_retries:0 ~quarantine:true ())
             golden))
  with
  | _ -> Alcotest.fail "expected Worker_failed"
  | exception Engine.Worker_failed msg ->
      Alcotest.(check bool) "message reports the quarantine" true
        (contains msg "quarantined")

(* ------------------------------------------------------------------ *)
(* journal_finished and catalogue compaction                          *)
(* ------------------------------------------------------------------ *)

let test_journal_finished () =
  let golden = Lazy.force hi_golden in
  with_temp_file (fun path ->
      ignore
        (Engine.run_spec ~jobs:1
           (Spec.of_golden
              ~policy:(Spec.make_policy ~journal:path ~shard_size:1 ())
              golden));
      Alcotest.(check bool) "complete journal finished" true
        (Runcell.journal_finished path);
      (* Drop the last shard record: unfinished. *)
      let text = read_file path in
      let cut = String.rindex (String.trim text) '\n' in
      let oc = open_out_bin path in
      output_string oc (String.sub text 0 (cut + 1));
      close_out oc;
      Alcotest.(check bool) "truncated journal unfinished" false
        (Runcell.journal_finished path);
      Alcotest.(check bool) "missing journal unfinished" false
        (Runcell.journal_finished (path ^ ".does-not-exist")))

let test_catalog_compact () =
  let dir = Filename.temp_file "fisupidx" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let file name text =
    let p = Filename.concat dir name in
    let oc = open_out_bin p in
    output_string oc text;
    close_out oc;
    p
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () ->
      let live = file "live.journal" "unfinished" in
      let old = file "old.journal" "superseded-then-kept-alive" in
      let finished = file "done.journal" "finished" in
      Catalog.record ~dir ~fingerprint:1 ~path:old;
      Catalog.record ~dir ~fingerprint:1 ~path:live (* supersedes old *);
      Catalog.record ~dir ~fingerprint:2 ~path:(Filename.concat dir "gone");
      Catalog.record ~dir ~fingerprint:3 ~path:finished;
      let is_done p = Filename.basename p = "done.journal" in
      (* Dry run: full report, nothing touched. *)
      let dry = Catalog.compact ~dry_run:true ~finished:is_done ~dir () in
      Alcotest.(check int) "dry examined" 4 dry.Catalog.examined;
      Alcotest.(check int) "dry folded" 1 dry.Catalog.folded;
      Alcotest.(check bool) "dry run deletes nothing" true
        (Sys.file_exists finished);
      Alcotest.(check bool) "dry run keeps superseded index lines" true
        (Catalog.lookup ~dir ~fingerprint:3 <> None);
      (* Real compaction. *)
      let c = Catalog.compact ~finished:is_done ~dir () in
      Alcotest.(check int) "examined" 4 c.Catalog.examined;
      Alcotest.(check int) "superseded" 1 c.Catalog.superseded;
      Alcotest.(check int) "dangling" 1 c.Catalog.dangling;
      Alcotest.(check int) "folded" 1 c.Catalog.folded;
      Alcotest.(check int) "kept" 1 c.Catalog.kept;
      Alcotest.(check bool) "finished journal deleted" false
        (Sys.file_exists finished);
      Alcotest.(check bool) "unfinished journal kept on disk" true
        (Sys.file_exists live);
      Alcotest.(check bool) "live entry survives" true
        (Catalog.lookup ~dir ~fingerprint:1 = Some live);
      Alcotest.(check bool) "folded entry pruned" true
        (Catalog.lookup ~dir ~fingerprint:3 = None);
      Alcotest.(check bool) "dangling entry pruned" true
        (Catalog.lookup ~dir ~fingerprint:2 = None))

(* ------------------------------------------------------------------ *)
(* Domains-pool stall watchdog (report-only)                          *)
(* ------------------------------------------------------------------ *)

let test_pool_stall_watchdog () =
  let stalls = ref [] in
  Pool.run ~deadline:0.08
    ~on_stall:(fun ~stalled_for -> stalls := stalled_for :: !stalls)
    ~jobs:2 ~tasks:3
    (fun i -> if i = 2 then Unix.sleepf 0.35);
  Alcotest.(check bool) "watchdog fired" true (!stalls <> []);
  List.iter
    (fun s ->
      Alcotest.(check bool) "stall duration plausible" true (s > 0.))
    !stalls;
  (* An undisturbed run under the same deadline stays silent. *)
  let quiet = ref 0 in
  Pool.run ~deadline:0.5
    ~on_stall:(fun ~stalled_for:_ -> incr quiet)
    ~jobs:2 ~tasks:8
    (fun _ -> ());
  Alcotest.(check int) "no stall on a healthy pool" 0 !quiet

let suite =
  ( "supervision",
    [
      Alcotest.test_case "supervision payload roundtrip" `Quick
        test_supervision_payload_roundtrip;
      Alcotest.test_case "hang detected, killed, healed" `Quick
        test_hang_detection;
      Alcotest.test_case "stall detected, killed, healed" `Quick
        test_stall_detection;
      Alcotest.test_case "transient crash heals without resume" `Quick
        test_transient_crash_heals;
      Alcotest.test_case "poisoned shard quarantined; resume heals" `Slow
        test_poison_quarantine_and_resume;
      Alcotest.test_case "scan-only API raises on quarantine" `Quick
        test_scan_only_raises_on_quarantine;
      Alcotest.test_case "journal_finished taxonomy" `Quick
        test_journal_finished;
      Alcotest.test_case "catalogue compaction" `Quick test_catalog_compact;
      Alcotest.test_case "domain pool stall watchdog" `Quick
        test_pool_stall_watchdog;
    ] )
