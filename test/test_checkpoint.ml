(* Tests for the snapshot-accelerated injection hot path: the serial
   watermark scheme of Machine.run_checkpointed, and the central
   bit-identity theorem of Injector.plan — the checkpoint stride is a
   pure performance knob, so every stride (including degenerate ones)
   must reproduce the replay provider's outcomes exactly, on both fault
   spaces, on fixed fixtures and qcheck-random programs, and across a
   journal resume whose two halves ran with different strides. *)

let check_scans_identical msg reference scan =
  Alcotest.(check bool) (msg ^ " (structural)") true (reference = scan);
  Alcotest.(check string)
    (msg ^ " (serialised)")
    (Csv_io.to_string reference)
    (Csv_io.to_string scan)

(* A small kernel whose fault space provokes every interesting shape of
   faulty run: a RAM-resident loop bound (bit flips yield watchdog
   timeouts for the ladder's loop-proof shortcut to classify), serial
   output spread over the run (rendezvous anchors), and enough data flow
   that some faults converge back onto the golden trace mid-run. *)
let looper () =
  let open Builder in
  prog ~name:"looper" ~stack:64
    [
      global "acc" ~init:[ 3 ];
      global "n" ~init:[ 9 ];
      array "buf" 4 ~init:[ 1; 2; 3; 4 ];
    ]
    [
      func "main" ~locals:[ "i" ]
        (for_ "i" ~from:(i 0) ~below:(g "n")
           [
             out (g "acc" &: i 255);
             setg "acc" (g "acc" +: elem "buf" (l "i" %: i 4));
             set_elem "buf" (l "i" %: i 4) (g "acc" ^: i 5);
           ]
        @ [ out (g "acc" &: i 255); ret_unit ]);
    ]

let looper_golden = lazy (Golden.run (Codegen.compile (looper ())))

let looper_replay =
  lazy
    (let golden = Lazy.force looper_golden in
     Scan.pruned ~provider:(Injector.replay golden) golden)

let outcome_count scan o =
  Array.fold_left
    (fun n e -> if e.Scan.outcome = o then n + 1 else n)
    0 scan.Scan.experiments

(* ------------------------------------------------------------------ *)
(* Serial watermarks on the checkpoint ladder                         *)
(* ------------------------------------------------------------------ *)

let test_ladder_watermarks () =
  let stride = 64 in
  let m = Machine.create (Mbox1.baseline ~items:3 ()) in
  let reason, snaps = Machine.run_checkpointed m ~stride ~limit:100_000 in
  Alcotest.(check bool) "golden run halted" true (reason = Machine.Halted);
  let output = Machine.serial_output m in
  Alcotest.(check bool) "has checkpoints" true (Array.length snaps > 2);
  Array.iteri
    (fun idx snap ->
      (* The ladder is captured after every [stride] executed cycles. *)
      Alcotest.(check int)
        (Printf.sprintf "snap %d cycle" idx)
        ((idx + 1) * stride)
        (Machine.Snapshot.cycle snap);
      let r = Machine.Snapshot.restore snap ~tracer:None in
      (* The length watermark was resolved against the final output:
         a restored machine reports exactly the prefix emitted by
         capture time, without ever having copied it per checkpoint. *)
      let len = Machine.Snapshot.serial_length snap in
      Alcotest.(check int)
        (Printf.sprintf "snap %d serial watermark" idx)
        len (Machine.serial_length r);
      Alcotest.(check string)
        (Printf.sprintf "snap %d serial prefix" idx)
        (String.sub output 0 len) (Machine.serial_output r);
      Alcotest.(check int)
        (Printf.sprintf "snap %d event watermark" idx)
        (Machine.Snapshot.event_count snap)
        (Machine.event_count r);
      (* Resuming any rung replays the rest of the run exactly. *)
      let tail = Machine.run r ~limit:100_000 in
      Alcotest.(check bool)
        (Printf.sprintf "snap %d resumes to halt" idx)
        true (tail = Machine.Halted);
      Alcotest.(check int)
        (Printf.sprintf "snap %d resumed cycles" idx)
        (Machine.cycle m) (Machine.cycle r);
      Alcotest.(check string)
        (Printf.sprintf "snap %d resumed output" idx)
        output (Machine.serial_output r))
    snaps

(* ------------------------------------------------------------------ *)
(* Stride sweep: plan = replay, bit for bit, on both fault spaces     *)
(* ------------------------------------------------------------------ *)

(* Strides deliberately include the degenerate ends: 1 (a checkpoint
   every cycle), 0 (plan degrades to replay), and one far beyond the
   benchmark runtime (an empty ladder: every session starts at reset
   but still classifies through the convergence shortcuts). *)
let strides golden = [ 0; 1; 7; 64; golden.Golden.cycles + 50 ]

let test_stride_identity_memory () =
  let golden = Lazy.force looper_golden in
  let reference = Lazy.force looper_replay in
  (* The fixture must actually exercise the watchdog path. *)
  Alcotest.(check bool) "fixture has timeouts" true
    (outcome_count reference Outcome.Timeout > 0);
  Alcotest.(check bool) "fixture has failures" true
    (Array.exists
       (fun e -> Outcome.is_failure e.Scan.outcome)
       reference.Scan.experiments);
  List.iter
    (fun stride ->
      check_scans_identical
        (Printf.sprintf "memory stride %d" stride)
        reference
        (Scan.pruned ~provider:(Injector.plan ~stride golden) golden))
    (strides golden)

let test_stride_identity_registers () =
  let rt = Regspace.analyze (Codegen.compile (looper ())) in
  let rgolden = rt.Regspace.golden in
  let reference = Regspace.scan ~provider:(Injector.replay rgolden) rt in
  Alcotest.(check bool) "register fixture has timeouts" true
    (outcome_count reference Outcome.Timeout > 0);
  List.iter
    (fun stride ->
      check_scans_identical
        (Printf.sprintf "registers stride %d" stride)
        reference
        (Regspace.scan ~provider:(Injector.plan ~stride rgolden) rt))
    (strides rgolden)

(* ------------------------------------------------------------------ *)
(* run_at / session equivalence on ladder sessions                    *)
(* ------------------------------------------------------------------ *)

let test_run_at_matches_planned_session () =
  let golden = Lazy.force looper_golden in
  let w_bits = golden.Golden.program.Program.ram_size * 8 in
  let coords =
    (* Edge cycles (first and last) and a spread in between, on a few
       different bits. *)
    [
      (1, 0);
      (1, w_bits - 1);
      (golden.Golden.cycles / 3, 17 mod w_bits);
      ((2 * golden.Golden.cycles / 3) + 1, 42 mod w_bits);
      (golden.Golden.cycles, w_bits / 2);
    ]
  in
  List.iter
    (fun stride ->
      let session = Injector.session (Injector.plan ~stride golden) in
      List.iter
        (fun (cycle, bit) ->
          let coord = { Coordspace.cycle; bit } in
          Alcotest.(check bool)
            (Printf.sprintf "stride %d @ (%d,%d)" stride cycle bit)
            true
            (Injector.session_run_at session coord
            = Injector.run_at golden coord))
        coords)
    [ 1; Injector.default_stride; golden.Golden.cycles + 50 ]

(* ------------------------------------------------------------------ *)
(* The stride is not part of the campaign identity                    *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_ignores_stride () =
  let golden = Lazy.force looper_golden in
  let spec stride =
    Spec.of_golden
      ~policy:(Spec.make_policy ~checkpoint_stride:stride ())
      golden
  in
  let reference = Engine.fingerprint_spec (spec Injector.default_stride) in
  List.iter
    (fun stride ->
      Alcotest.(check int)
        (Printf.sprintf "fingerprint at stride %d" stride)
        reference
        (Engine.fingerprint_spec (spec stride)))
    [ 0; 1; 7; 64; 100_000 ];
  Alcotest.(check int) "fingerprint with default policy" reference
    (Engine.fingerprint_spec (Spec.of_golden golden))

(* ------------------------------------------------------------------ *)
(* Journal resume across a stride change                              *)
(* ------------------------------------------------------------------ *)

exception Killed

let test_resume_stride_churn () =
  (* A campaign journaled at one stride, killed partway, must resume at
     a different stride (including stride 0 = replay semantics) to the
     bit-identical result: the journal fingerprint cannot see the
     stride, and shards conducted by the two providers agree exactly. *)
  let golden = Lazy.force looper_golden in
  let reference = Lazy.force looper_replay in
  let path = Filename.temp_file "ficheckpoint" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let spec ~resume ~stride =
        Spec.of_golden
          ~policy:
            (Spec.make_policy ~journal:path ~resume ~shard_size:1
               ~checkpoint_stride:stride ())
          golden
      in
      (match
         Engine.run_spec ~jobs:1
           ~progress:(fun ~done_ ~total ~tally:_ ->
             if done_ > total / 3 then raise Killed)
           (spec ~resume:false ~stride:8)
       with
      | _ -> Alcotest.fail "expected the campaign to be killed"
      | exception Killed -> ());
      let snap = ref None in
      let resumed =
        Engine.run_spec ~jobs:1
          ~observe:(fun s -> snap := Some s)
          (spec ~resume:true ~stride:512)
      in
      check_scans_identical "resumed at a different stride" reference resumed;
      (match !snap with
      | None -> Alcotest.fail "observe never called"
      | Some s ->
          Alcotest.(check bool) "recovered shards without re-conducting" true
            (s.Progress.resumed_classes > 0));
      (* Once complete, a replay-semantics resume conducts nothing. *)
      let snap = ref None in
      let again =
        Engine.run_spec ~jobs:1
          ~observe:(fun s -> snap := Some s)
          (spec ~resume:true ~stride:0)
      in
      check_scans_identical "replay-stride rerun" reference again;
      match !snap with
      | None -> Alcotest.fail "observe never called"
      | Some s ->
          Alcotest.(check int) "zero conducted on complete journal"
            s.Progress.classes_total s.Progress.resumed_classes)

(* ------------------------------------------------------------------ *)
(* qcheck: random programs, random strides                            *)
(* ------------------------------------------------------------------ *)

let random_program seed =
  let open Builder in
  let k = 3 + (seed mod 7) in
  prog ~name:(Printf.sprintf "ckrand%d" seed) ~stack:64
    [
      global "acc" ~init:[ seed mod 11 ];
      global "n" ~init:[ k ];
      array "buf" 3 ~init:[ 1; 2; 3 ];
    ]
    [
      func "main" ~locals:[ "i" ]
        (for_ "i" ~from:(i 0) ~below:(g "n")
           [
             setg "acc" (g "acc" +: elem "buf" (l "i" %: i 3));
             set_elem "buf" (l "i" %: i 3) (g "acc" ^: i seed);
           ]
        @ [ out (g "acc" &: i 255); ret_unit ]);
    ]

let qcheck_plan_equals_replay =
  QCheck.Test.make ~name:"checkpoint plan equals replay on random programs"
    ~count:8
    QCheck.(pair (int_bound 1000) (int_bound 1000))
    (fun (seed, stride_seed) ->
      let golden = Golden.run (Codegen.compile (random_program seed)) in
      (* Cover tiny, mid and beyond-runtime strides. *)
      let stride =
        match stride_seed mod 3 with
        | 0 -> 1 + (stride_seed mod 13)
        | 1 -> 1 + (stride_seed mod golden.Golden.cycles)
        | _ -> golden.Golden.cycles + 1 + stride_seed
      in
      Scan.pruned ~provider:(Injector.plan ~stride golden) golden
      = Scan.pruned ~provider:(Injector.replay golden) golden)

let suite =
  ( "checkpoint",
    [
      Alcotest.test_case "ladder serial watermarks" `Quick
        test_ladder_watermarks;
      Alcotest.test_case "stride sweep bit-identity (memory)" `Quick
        test_stride_identity_memory;
      Alcotest.test_case "stride sweep bit-identity (registers)" `Quick
        test_stride_identity_registers;
      Alcotest.test_case "run_at matches planned sessions" `Quick
        test_run_at_matches_planned_session;
      Alcotest.test_case "fingerprint ignores stride" `Quick
        test_fingerprint_ignores_stride;
      Alcotest.test_case "journal resume across stride change" `Quick
        test_resume_stride_churn;
      QCheck_alcotest.to_alcotest qcheck_plan_equals_replay;
    ] )
