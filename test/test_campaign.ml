(* Tests for the campaign engine: outcome classification, golden runs,
   injection, pruned/brute-force scans, samplers and CSV persistence.
   The "Hi" program's exact paper arithmetic (Section IV) is the primary
   fixture. *)

let outcome = Alcotest.testable Outcome.pp ( = )

(* ------------------------------------------------------------------ *)
(* Outcome classification                                             *)
(* ------------------------------------------------------------------ *)

let classify ?(golden_output = "Hi") ?(golden_event_count = 0)
    ?(stop = Machine.Halted) ?(output = "Hi") ?(event_count = 0) () =
  Outcome.classify ~golden_output ~golden_event_count ~stop ~output
    ~event_count

let test_classify_no_effect () =
  Alcotest.check outcome "identical run" Outcome.No_effect (classify ())

let test_classify_corrected () =
  Alcotest.check outcome "corrected" Outcome.Corrected
    (classify ~event_count:1 ())

let test_classify_sdc () =
  Alcotest.check outcome "wrong output" Outcome.Sdc (classify ~output:"Ha" ())

let test_classify_truncated () =
  Alcotest.check outcome "prefix output" Outcome.Output_truncated
    (classify ~output:"H" ());
  (* longer-than-golden output is SDC, not truncation *)
  Alcotest.check outcome "longer output" Outcome.Sdc
    (classify ~output:"Hi!" ())

let test_classify_stops () =
  Alcotest.check outcome "panic" Outcome.Detected_fail_stop
    (classify ~stop:(Machine.Panicked 2l) ());
  Alcotest.check outcome "timeout" Outcome.Timeout
    (classify ~stop:Machine.Cycle_limit ());
  Alcotest.check outcome "mem trap" Outcome.Trap_memory
    (classify ~stop:(Machine.Trapped (Machine.Unmapped_access 0)) ());
  Alcotest.check outcome "misaligned" Outcome.Trap_memory
    (classify ~stop:(Machine.Trapped (Machine.Misaligned_access 2)) ());
  Alcotest.check outcome "rom write" Outcome.Trap_memory
    (classify ~stop:(Machine.Trapped (Machine.Rom_write 0)) ());
  Alcotest.check outcome "cpu trap" Outcome.Trap_cpu
    (classify ~stop:(Machine.Trapped (Machine.Bad_pc 99)) ());
  Alcotest.check outcome "div zero" Outcome.Trap_cpu
    (classify ~stop:(Machine.Trapped Machine.Division_by_zero) ())

let test_outcome_strings () =
  List.iter
    (fun o ->
      Alcotest.(check (option outcome))
        "roundtrip" (Some o)
        (Outcome.of_string (Outcome.to_string o)))
    Outcome.all;
  Alcotest.(check (option outcome)) "unknown" None (Outcome.of_string "xyz")

let test_outcome_benign () =
  Alcotest.(check bool) "no_effect" true (Outcome.is_benign Outcome.No_effect);
  Alcotest.(check bool) "corrected" true (Outcome.is_benign Outcome.Corrected);
  List.iter
    (fun o ->
      if o <> Outcome.No_effect && o <> Outcome.Corrected then
        Alcotest.(check bool) (Outcome.to_string o) true (Outcome.is_failure o))
    Outcome.all

(* ------------------------------------------------------------------ *)
(* Golden runs                                                        *)
(* ------------------------------------------------------------------ *)

let hi_golden = lazy (Golden.run (Hi.program ()))

let test_golden_hi () =
  let g = Lazy.force hi_golden in
  Alcotest.(check string) "output" "Hi" g.Golden.output;
  Alcotest.(check int) "runtime 8 cycles" 8 g.Golden.cycles;
  Alcotest.(check int) "fault space 128" 128 (Golden.fault_space_size g);
  Alcotest.(check int) "event-free" 0 g.Golden.event_count

let test_golden_failure () =
  let bad =
    Program.make ~name:"bad" ~code:[| Isa.Lb (Isa.reg 1, Isa.r0, 9999l) |]
      ~ram_size:16 ()
  in
  match Golden.run bad with
  | exception Golden.Golden_failed (_, Machine.Trapped _) -> ()
  | exception _ -> Alcotest.fail "wrong exception"
  | _ -> Alcotest.fail "expected Golden_failed"

(* ------------------------------------------------------------------ *)
(* Injection: Hi, the Section-IV arithmetic                           *)
(* ------------------------------------------------------------------ *)

let test_hi_failure_coordinates () =
  let g = Lazy.force hi_golden in
  (* msg[0] (bits 0-7) vulnerable at cycles 2-4; msg[1] (bits 8-15) at
     cycles 4-6; everything else benign. *)
  let expected_failure cycle bit =
    let byte = bit / 8 in
    if byte = 0 then cycle >= 2 && cycle <= 4 else cycle >= 4 && cycle <= 6
  in
  let failures = ref 0 in
  Coordspace.iter ~total_cycles:8 ~ram_size:2 (fun coord ->
      let o = Injector.run_at g coord in
      let expected = expected_failure coord.Coordspace.cycle coord.Coordspace.bit in
      if Outcome.is_failure o <> expected then
        Alcotest.failf "coordinate %a: got %a"
          Coordspace.pp_coord coord Outcome.pp o;
      if Outcome.is_failure o then incr failures);
  Alcotest.(check int) "F = 48 (paper)" 48 !failures

let test_session_matches_restart () =
  let g = Lazy.force hi_golden in
  let session = Injector.session (Injector.plan g) in
  (* Visit coordinates in non-decreasing cycle order. *)
  for cycle = 1 to 8 do
    for bit = 0 to 15 do
      let coord = { Coordspace.cycle; bit } in
      let a = Injector.run_at g coord in
      let b = Injector.session_run_at session coord in
      if a <> b then
        Alcotest.failf "mismatch at %a" Coordspace.pp_coord coord
    done
  done

let test_session_monotonic () =
  let g = Lazy.force hi_golden in
  let session = Injector.session (Injector.replay g) in
  ignore (Injector.session_run_at session { Coordspace.cycle = 5; bit = 0 });
  Alcotest.check_raises "decreasing cycle"
    (Invalid_argument "Injector.session_run_at: injection cycles must not decrease")
    (fun () ->
      ignore (Injector.session_run_at session { Coordspace.cycle = 3; bit = 0 }))

let test_injector_bad_coord () =
  let g = Lazy.force hi_golden in
  Alcotest.check_raises "outside space"
    (Invalid_argument "Injector: coordinate (9, 0) outside fault space")
    (fun () -> ignore (Injector.run_at g { Coordspace.cycle = 9; bit = 0 }))

(* ------------------------------------------------------------------ *)
(* Scans                                                              *)
(* ------------------------------------------------------------------ *)

let hi_scan = lazy (Scan.pruned (Lazy.force hi_golden))

let test_hi_pruned_scan () =
  let scan = Lazy.force hi_scan in
  Alcotest.(check int) "w" 128 (Scan.fault_space_size scan);
  Alcotest.(check int) "experiments (2 classes x 8 bits)" 16
    (Array.length scan.Scan.experiments);
  Alcotest.(check int) "F weighted = 48" 48 (Metrics.failure_count scan)

let test_hi_brute_force_equivalence () =
  let g = Lazy.force hi_golden in
  let scan = Lazy.force hi_scan in
  let expand = Scan.expander scan in
  let brute = Scan.brute_force g in
  Alcotest.(check int) "all coordinates" 128 (Array.length brute);
  Array.iter
    (fun (coord, o) ->
      if expand coord <> o then
        Alcotest.failf "pruned/brute mismatch at %a" Coordspace.pp_coord coord)
    brute

let test_scan_strategies_agree () =
  let g = Lazy.force hi_golden in
  let a = Scan.pruned ~provider:(Injector.plan g) g in
  let b = Scan.pruned ~provider:(Injector.replay g) g in
  let key (e : Scan.experiment) =
    (e.Scan.byte, e.Scan.t_start, e.Scan.bit_in_byte, e.Scan.outcome)
  in
  let sort s =
    let l = Array.to_list (Array.map key s.Scan.experiments) in
    List.sort compare l
  in
  Alcotest.(check bool) "same results" true (sort a = sort b)

let test_scan_weight_invariant () =
  let scan = Lazy.force hi_scan in
  let conducted =
    Array.fold_left
      (fun acc e -> acc + Scan.experiment_weight e)
      0 scan.Scan.experiments
  in
  Alcotest.(check int) "conducted + benign = w"
    (Scan.fault_space_size scan)
    (conducted + scan.Scan.benign_weight)

let test_scan_progress_callback () =
  let g = Lazy.force hi_golden in
  let calls = ref 0 in
  let total_seen = ref 0 in
  let last_tally = ref None in
  ignore
    (Scan.pruned
       ~progress:(fun ~done_ ~total ~tally ->
         incr calls;
         total_seen := total;
         (* The running tally always covers exactly the experiments of
            the classes completed so far (8 per class). *)
         Alcotest.(check int) "tally total" (8 * done_)
           (Outcome.tally_total tally);
         last_tally := Some (Outcome.tally_copy tally))
       g);
  Alcotest.(check int) "one call per class" 2 !calls;
  Alcotest.(check int) "total classes" 2 !total_seen;
  match !last_tally with
  | None -> Alcotest.fail "progress never called"
  | Some tally ->
      (* Hi: every class-bit fails except the upper bits (paper: F=48 of
         weight; 16 experiments, all conducted). *)
      Alcotest.(check int) "tally covers all experiments" 16
        (Outcome.tally_total tally)

(* Pruned scan == brute force on a random compiled MIR program: the
   central losslessness theorem of def/use pruning, checked end-to-end. *)
let small_program seed =
  let open Builder in
  (* A little data-flow program parameterised by seed. *)
  let k = 1 + (seed mod 5) in
  prog ~name:(Printf.sprintf "rand%d" seed) ~stack:64
    [ global "acc" ~init:[ seed mod 7 ]; array "buf" 3 ~init:[ 1; 2; 3 ] ]
    ([
       func "main" ~locals:[ "i" ]
         (for_ "i" ~from:(i 0) ~below:(i k)
            [
              setg "acc" (g "acc" +: elem "buf" (l "i" %: i 3));
              set_elem "buf" (l "i" %: i 3) (g "acc" ^: i seed);
            ]
         @ [ out (g "acc" &: i 255); ret_unit ]);
     ]
    @ [])

let qcheck_pruning_lossless =
  QCheck.Test.make ~name:"pruned scan equals brute force on random programs"
    ~count:6
    QCheck.(int_bound 1000)
    (fun seed ->
      let image = Codegen.compile (small_program seed) in
      let golden = Golden.run image in
      (* Keep brute force tractable. *)
      QCheck.assume (golden.Golden.cycles * golden.Golden.program.Program.ram_size < 40_000);
      let scan = Scan.pruned golden in
      let expand = Scan.expander scan in
      Array.for_all
        (fun (coord, o) -> expand coord = o)
        (Scan.brute_force golden))

(* ------------------------------------------------------------------ *)
(* Samplers                                                           *)
(* ------------------------------------------------------------------ *)

let test_uniform_raw_converges () =
  let g = Lazy.force hi_golden in
  let rng = Prng.create ~seed:5L in
  let est = Sampler.uniform_raw rng ~samples:4000 g in
  (* Ground truth on Hi: 48/128 = 0.375. *)
  Alcotest.(check bool) "estimate near 0.375" true
    (Float.abs (Sampler.failure_fraction est -. 0.375) < 0.03);
  Alcotest.(check int) "population = w" 128 est.Sampler.population;
  Alcotest.(check bool) "memoised" true (est.Sampler.conducted <= 16)

let test_biased_sampler_is_wrong () =
  (* On Hi every def/use experiment class fails, so per-class sampling
     reports failure fraction 1.0 — a maximal Pitfall-2 demonstration. *)
  let g = Lazy.force hi_golden in
  let rng = Prng.create ~seed:5L in
  let est = Sampler.biased_per_class rng ~samples:500 g in
  Alcotest.(check bool) "biased estimate = 1.0" true
    (Sampler.failure_fraction est = 1.0)

let test_uniform_effective () =
  let g = Lazy.force hi_golden in
  let rng = Prng.create ~seed:5L in
  let est = Sampler.uniform_effective rng ~samples:1000 g in
  (* Effective population w' = 2 classes x 8 bits x weight 3 = 48, all
     failing. *)
  Alcotest.(check int) "population w'" 48 est.Sampler.population;
  Alcotest.(check bool) "all samples fail" true
    (Sampler.failure_fraction est = 1.0);
  (* Extrapolation recovers the full-scan count. *)
  Alcotest.(check bool) "extrapolates to 48" true
    (Float.abs (Metrics.extrapolated_failures est -. 48.0) < 1e-9)

let test_outcome_counts_sum () =
  let g = Lazy.force hi_golden in
  let rng = Prng.create ~seed:6L in
  let est = Sampler.uniform_raw rng ~samples:777 g in
  let total =
    List.fold_left (fun acc (_, n) -> acc + n) 0 est.Sampler.outcome_counts
  in
  Alcotest.(check int) "counts sum to samples" 777 total

(* ------------------------------------------------------------------ *)
(* CSV persistence                                                    *)
(* ------------------------------------------------------------------ *)

let test_csv_roundtrip () =
  let scan = Lazy.force hi_scan in
  let text = Csv_io.to_string scan in
  match Csv_io.of_string text with
  | Error e -> Alcotest.fail e
  | Ok scan' ->
      Alcotest.(check string) "name" scan.Scan.name scan'.Scan.name;
      Alcotest.(check string) "variant" scan.Scan.variant scan'.Scan.variant;
      Alcotest.(check int) "cycles" scan.Scan.cycles scan'.Scan.cycles;
      Alcotest.(check int) "benign" scan.Scan.benign_weight scan'.Scan.benign_weight;
      Alcotest.(check int) "F preserved"
        (Metrics.failure_count scan)
        (Metrics.failure_count scan');
      Alcotest.(check int) "experiment count"
        (Array.length scan.Scan.experiments)
        (Array.length scan'.Scan.experiments)

let test_csv_file_roundtrip () =
  let scan = Lazy.force hi_scan in
  let path = Filename.temp_file "fipit" ".csv" in
  Csv_io.save path scan;
  (match Csv_io.load path with
  | Error e -> Alcotest.fail e
  | Ok scan' ->
      Alcotest.(check int) "F preserved"
        (Metrics.failure_count scan)
        (Metrics.failure_count scan'));
  Sys.remove path

let test_csv_errors () =
  (match Csv_io.of_string "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected header error");
  match Csv_io.of_string "# name,x\n# variant,v\n# cycles,zz\n# ram_bytes,4\n# benign_weight,0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected integer error"

let suite =
  ( "campaign",
    [
      Alcotest.test_case "classify no effect" `Quick test_classify_no_effect;
      Alcotest.test_case "classify corrected" `Quick test_classify_corrected;
      Alcotest.test_case "classify sdc" `Quick test_classify_sdc;
      Alcotest.test_case "classify truncated" `Quick test_classify_truncated;
      Alcotest.test_case "classify stop reasons" `Quick test_classify_stops;
      Alcotest.test_case "outcome string roundtrip" `Quick test_outcome_strings;
      Alcotest.test_case "benign/failure split" `Quick test_outcome_benign;
      Alcotest.test_case "golden hi" `Quick test_golden_hi;
      Alcotest.test_case "golden failure" `Quick test_golden_failure;
      Alcotest.test_case "hi failure coordinates (F=48)" `Quick
        test_hi_failure_coordinates;
      Alcotest.test_case "session = restart" `Quick test_session_matches_restart;
      Alcotest.test_case "session monotonic" `Quick test_session_monotonic;
      Alcotest.test_case "injector bad coordinate" `Quick test_injector_bad_coord;
      Alcotest.test_case "hi pruned scan" `Quick test_hi_pruned_scan;
      Alcotest.test_case "hi brute force equivalence" `Quick
        test_hi_brute_force_equivalence;
      Alcotest.test_case "scan strategies agree" `Quick test_scan_strategies_agree;
      Alcotest.test_case "scan weight invariant" `Quick test_scan_weight_invariant;
      Alcotest.test_case "scan progress callback" `Quick test_scan_progress_callback;
      QCheck_alcotest.to_alcotest qcheck_pruning_lossless;
      Alcotest.test_case "uniform sampling converges" `Quick
        test_uniform_raw_converges;
      Alcotest.test_case "biased sampler is wrong" `Quick
        test_biased_sampler_is_wrong;
      Alcotest.test_case "effective-population sampler" `Quick
        test_uniform_effective;
      Alcotest.test_case "outcome counts sum" `Quick test_outcome_counts_sum;
      Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
      Alcotest.test_case "csv file roundtrip" `Quick test_csv_file_roundtrip;
      Alcotest.test_case "csv errors" `Quick test_csv_errors;
    ] )
