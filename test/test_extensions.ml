(* Cross-cutting tests: pass composition, cross-layer reporting,
   statistical coverage of the confidence intervals, and assembler
   directives not covered elsewhere. *)

(* ------------------------------------------------------------------ *)
(* Pass composition                                                   *)
(* ------------------------------------------------------------------ *)

let run_prog p =
  let image = Codegen.compile p in
  let m = Machine.create image in
  let reason = Machine.run m ~limit:1_000_000 in
  (Machine.serial_output m, reason)

let composed_source () =
  let open Builder in
  prog ~name:"comp" ~stack:160
    [ array ~protected:true "tbl" 6 ~init:[ 2; 4; 6; 8; 10; 12 ]; global "acc" ]
    ([
       func "use_tbl" ~params:[ "k" ] ~locals:[ "dead" ] ~protects:[ "tbl" ]
         [
           set "dead" (i 3 *: i 9) (* dead store for DSE to find *);
           setg "acc" (g "acc" +: elem "tbl" (l "k" %: i 6));
           ret_unit;
         ];
       func "main" ~locals:[ "k" ]
         (for_ "k" ~from:(i 0) ~below:(i 9) [ call_ "use_tbl" [ l "k" ] ]
         @ [ call_ out_dec [ g "acc" ]; ret_unit ]);
     ]
    @ stdlib)

let test_harden_then_optimize () =
  let p = composed_source () in
  let reference = run_prog p in
  (* Hardening then optimisation must preserve behaviour, and the
     optimiser must not eliminate the protection code (the replica
     stores are global writes, never dead). *)
  let ho = Optimize.optimize (Harden.sum_dmr p) in
  Alcotest.(check bool) "same behaviour" true (run_prog ho = reference);
  Alcotest.(check bool) "protection survives" true
    (Mir.find_func ho "__check_tbl" <> None);
  (* And it still corrects an injected fault. *)
  let image = Codegen.compile ho in
  let addr = Option.get (Program.find_data_symbol image "tbl") in
  let m = Machine.create image in
  Machine.run_until m ~cycle:30;
  Machine.flip_bit m ((addr * 8) + 3);
  let reason = Machine.run m ~limit:1_000_000 in
  Alcotest.(check bool) "halted" true (reason = Machine.Halted);
  Alcotest.(check bool) "corrected" true
    (List.exists
       (fun (_, c) -> Int32.equal c Event_codes.corrected)
       (Machine.detection_events m))

let test_optimize_then_harden () =
  let p = composed_source () in
  let reference = run_prog p in
  let oh = Harden.sum_dmr (Optimize.optimize p) in
  Alcotest.(check bool) "same behaviour" true (run_prog oh = reference)

(* ------------------------------------------------------------------ *)
(* Cross-layer report                                                 *)
(* ------------------------------------------------------------------ *)

let test_cross_layer_report () =
  let text = Figures.cross_layer [ ("hi", Regspace.analyze (Hi.program ())) ] in
  Alcotest.(check bool) "memory row" true
    (Astring_contains.contains text "memory");
  Alcotest.(check bool) "register row" true
    (Astring_contains.contains text "registers");
  (* hi memory layer: the exact Section-IV numbers appear. *)
  Alcotest.(check bool) "62.50%" true (Astring_contains.contains text "62.50%");
  Alcotest.(check bool) "F=48" true (Astring_contains.contains text "48")

(* ------------------------------------------------------------------ *)
(* Confidence-interval coverage (statistical)                         *)
(* ------------------------------------------------------------------ *)

let test_wilson_coverage () =
  (* Simulate Bernoulli(0.3) experiments; the 95% Wilson interval should
     contain the true p in roughly 95% of repetitions. *)
  let rng = Prng.create ~seed:99L in
  let p_true = 0.3 in
  let reps = 400 and trials = 200 in
  let covered = ref 0 in
  for _ = 1 to reps do
    let fails = ref 0 in
    for _ = 1 to trials do
      if Prng.float rng 1.0 < p_true then incr fails
    done;
    let { Confidence.lower; upper } =
      Confidence.wilson ~fails:!fails ~trials ~confidence:0.95
    in
    if lower <= p_true && p_true <= upper then incr covered
  done;
  let rate = float_of_int !covered /. float_of_int reps in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.3f within [0.90, 0.99]" rate)
    true
    (rate >= 0.90 && rate <= 0.99)

(* ------------------------------------------------------------------ *)
(* Assembler directives                                               *)
(* ------------------------------------------------------------------ *)

let test_assembler_space_and_align () =
  let image =
    Assembler.assemble_exn ~name:"dir"
      {|
      .ram 64
      .data
      a: .byte 1
      .align
      b: .word 7
      c: .space 5
      d: .byte 2
      .text
      main:
          halt
      |}
  in
  Alcotest.(check (option int)) "a at 0" (Some 0)
    (Program.find_data_symbol image "a");
  Alcotest.(check (option int)) "b aligned to 4" (Some 4)
    (Program.find_data_symbol image "b");
  Alcotest.(check (option int)) "c after b" (Some 8)
    (Program.find_data_symbol image "c");
  Alcotest.(check (option int)) "d after space" (Some 13)
    (Program.find_data_symbol image "d")

let test_assembler_rodata_addressing () =
  let image =
    Assembler.assemble_exn ~name:"ro"
      {|
      .rodata
      k1: .word 17
      k2: .word 25
      .text
      main:
          li r1, k2
          lw r2, 0(r1)
          li r3, 0x300000
          addi r2, r2, 48   ; 25+48 = 'I'
          sb r2, 0(r3)
          halt
      |}
  in
  let m = Machine.create image in
  ignore (Machine.run m ~limit:1000);
  Alcotest.(check string) "rodata label resolves into ROM" "I"
    (Machine.serial_output m);
  (* ROM data symbols live above rom_base. *)
  Alcotest.(check bool) "k2 in ROM window" true
    (Option.get (Program.find_data_symbol image "k2") >= Memmap.rom_base)

let test_assembler_negative_immediates () =
  let image =
    Assembler.assemble_exn ~name:"neg"
      {|
      .text
      main:
          li r1, -3
          addi r1, r1, 54    ; 51 = '3'
          li r2, 0x300000
          sb r1, 0(r2)
          halt
      |}
  in
  let m = Machine.create image in
  ignore (Machine.run m ~limit:100);
  Alcotest.(check string) "negative li" "3" (Machine.serial_output m)

(* ------------------------------------------------------------------ *)
(* Shipped assembly programs                                          *)
(* ------------------------------------------------------------------ *)

let run_asm_file path =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let image = Assembler.assemble_exn ~name:(Filename.basename path) text in
  let m = Machine.create image in
  let reason = Machine.run m ~limit:100_000 in
  Alcotest.(check bool) "halted" true (reason = Machine.Halted);
  Machine.serial_output m

let test_shipped_sort () =
  Alcotest.(check string) "sorted" "12346789\n" (run_asm_file "../asm/sort.s")

let test_shipped_checksum () =
  Alcotest.(check string) "checksum passes" "P049\n"
    (run_asm_file "../asm/checksum.s")

(* ------------------------------------------------------------------ *)
(* Session/restart equivalence on a compiled program                  *)
(* ------------------------------------------------------------------ *)

let qcheck_session_equals_restart =
  QCheck.Test.make ~name:"checkpointed injection equals restart (compiled)"
    ~count:60
    QCheck.(pair (int_bound 10_000) (int_bound 10_000))
    (let golden = lazy (Golden.run (Mbox1.baseline ~items:3 ())) in
     fun (a, b) ->
       let golden = Lazy.force golden in
       let w_cycles = golden.Golden.cycles in
       let w_bits = golden.Golden.program.Program.ram_size * 8 in
       let c1 = 1 + (a mod w_cycles) and c2 = 1 + (b mod w_cycles) in
       let lo, hi = if c1 <= c2 then (c1, c2) else (c2, c1) in
       let bit1 = a mod w_bits and bit2 = b mod w_bits in
       let session = Injector.session (Injector.plan ~stride:64 golden) in
       let s1 =
         Injector.session_run_at session { Coordspace.cycle = lo; bit = bit1 }
       in
       let s2 =
         Injector.session_run_at session { Coordspace.cycle = hi; bit = bit2 }
       in
       let r1 = Injector.run_at golden { Coordspace.cycle = lo; bit = bit1 } in
       let r2 = Injector.run_at golden { Coordspace.cycle = hi; bit = bit2 } in
       s1 = r1 && s2 = r2)

let suite =
  ( "extensions",
    [
      Alcotest.test_case "harden then optimize" `Quick test_harden_then_optimize;
      Alcotest.test_case "optimize then harden" `Quick test_optimize_then_harden;
      Alcotest.test_case "cross-layer report" `Quick test_cross_layer_report;
      Alcotest.test_case "wilson coverage simulation" `Slow test_wilson_coverage;
      Alcotest.test_case "assembler .space/.align" `Quick
        test_assembler_space_and_align;
      Alcotest.test_case "assembler rodata addressing" `Quick
        test_assembler_rodata_addressing;
      Alcotest.test_case "assembler negative immediates" `Quick
        test_assembler_negative_immediates;
      Alcotest.test_case "shipped sort.s" `Quick test_shipped_sort;
      Alcotest.test_case "shipped checksum.s" `Quick test_shipped_checksum;
      QCheck_alcotest.to_alcotest qcheck_session_equals_restart;
    ] )
