(* Tests for trace recording, def/use analysis and fault-space geometry. *)

(* ------------------------------------------------------------------ *)
(* Trace                                                              *)
(* ------------------------------------------------------------------ *)

let test_trace_basic () =
  let t = Trace.create ~ram_size:8 in
  Trace.add t ~cycle:1 ~addr:0 ~width:4 ~kind:Trace.Write;
  Trace.add t ~cycle:3 ~addr:2 ~width:1 ~kind:Trace.Read;
  Trace.seal t ~total_cycles:5;
  Alcotest.(check int) "length" 2 (Trace.length t);
  Alcotest.(check int) "cycles" 5 (Trace.total_cycles t);
  Alcotest.(check int) "ram" 8 (Trace.ram_size t)

let test_trace_validation () =
  let t = Trace.create ~ram_size:8 in
  Trace.add t ~cycle:5 ~addr:0 ~width:1 ~kind:Trace.Read;
  Alcotest.check_raises "decreasing cycle"
    (Invalid_argument "Trace.add: cycles must be non-decreasing") (fun () ->
      Trace.add t ~cycle:4 ~addr:0 ~width:1 ~kind:Trace.Read);
  Alcotest.check_raises "outside ram"
    (Invalid_argument "Trace.add: access outside RAM") (fun () ->
      Trace.add t ~cycle:6 ~addr:7 ~width:4 ~kind:Trace.Read);
  Alcotest.check_raises "bad width"
    (Invalid_argument "Trace.add: width must be 1 or 4") (fun () ->
      Trace.add t ~cycle:6 ~addr:0 ~width:2 ~kind:Trace.Read);
  Alcotest.check_raises "seal before last access"
    (Invalid_argument "Trace.seal: accesses recorded beyond total_cycles")
    (fun () -> Trace.seal t ~total_cycles:3)

let test_trace_unsealed () =
  let t = Trace.create ~ram_size:8 in
  Alcotest.check_raises "total_cycles before seal"
    (Invalid_argument "Trace.total_cycles: trace not sealed") (fun () ->
      ignore (Trace.total_cycles t))

let test_byte_expansion () =
  let t = Trace.create ~ram_size:8 in
  Trace.add t ~cycle:2 ~addr:4 ~width:4 ~kind:Trace.Write;
  Trace.seal t ~total_cycles:4;
  let visits = ref [] in
  Trace.iter_byte_accesses t (fun ~byte ~cycle ~kind:_ ->
      visits := (byte, cycle) :: !visits);
  Alcotest.(check (list (pair int int)))
    "word covers 4 bytes"
    [ (4, 2); (5, 2); (6, 2); (7, 2) ]
    (List.rev !visits)

let test_trace_growth () =
  (* Exceed the initial capacity to exercise array growth. *)
  let t = Trace.create ~ram_size:8 in
  for c = 1 to 3000 do
    Trace.add t ~cycle:c ~addr:0 ~width:1 ~kind:Trace.Read
  done;
  Trace.seal t ~total_cycles:3000;
  Alcotest.(check int) "all recorded" 3000 (Trace.length t)

(* ------------------------------------------------------------------ *)
(* Def/use analysis                                                   *)
(* ------------------------------------------------------------------ *)

(* The paper's Figure 1 example: one byte, W at cycle 4, R at cycle 11,
   12 cycles total. *)
let figure1_defuse () =
  let t = Trace.create ~ram_size:1 in
  Trace.add t ~cycle:4 ~addr:0 ~width:1 ~kind:Trace.Write;
  Trace.add t ~cycle:11 ~addr:0 ~width:1 ~kind:Trace.Read;
  Trace.seal t ~total_cycles:12;
  Defuse.analyze t

let test_defuse_figure1 () =
  let d = figure1_defuse () in
  let classes = Defuse.classes d in
  Alcotest.(check int) "three classes" 3 (Array.length classes);
  let c0 = classes.(0) and c1 = classes.(1) and c2 = classes.(2) in
  Alcotest.(check bool) "overwritten [1,4]" true
    (c0.Defuse.t_start = 1 && c0.Defuse.t_end = 4 && c0.Defuse.kind = Defuse.Overwritten);
  Alcotest.(check bool) "experiment [5,11]" true
    (c1.Defuse.t_start = 5 && c1.Defuse.t_end = 11 && c1.Defuse.kind = Defuse.Experiment);
  Alcotest.(check int) "weight 7 (the paper's class size)" 7 (Defuse.weight c1);
  Alcotest.(check bool) "dormant [12,12]" true
    (c2.Defuse.t_start = 12 && c2.Defuse.t_end = 12 && c2.Defuse.kind = Defuse.Dormant);
  Alcotest.(check int) "8 experiments" 8 (Defuse.experiment_count d);
  Alcotest.(check int) "fault space" (12 * 8) (Defuse.fault_space_size d)

let test_defuse_initial_read () =
  (* A read of initialised memory: the interval [1, read] is an
     experiment (the initial contents count as defined at cycle 0). *)
  let t = Trace.create ~ram_size:1 in
  Trace.add t ~cycle:3 ~addr:0 ~width:1 ~kind:Trace.Read;
  Trace.seal t ~total_cycles:4;
  let d = Defuse.analyze t in
  let c = Defuse.find d ~cycle:2 ~byte:0 in
  Alcotest.(check bool) "experiment from reset" true
    (c.Defuse.t_start = 1 && c.Defuse.t_end = 3 && c.Defuse.kind = Defuse.Experiment)

let test_defuse_untouched_byte () =
  let t = Trace.create ~ram_size:2 in
  Trace.add t ~cycle:1 ~addr:0 ~width:1 ~kind:Trace.Read;
  Trace.seal t ~total_cycles:3;
  let d = Defuse.analyze t in
  let c = Defuse.find d ~cycle:2 ~byte:1 in
  Alcotest.(check bool) "dormant for whole run" true
    (c.Defuse.t_start = 1 && c.Defuse.t_end = 3 && c.Defuse.kind = Defuse.Dormant)

let test_defuse_back_to_back () =
  (* Read at cycle 1 then read at cycle 2: two experiment classes of
     weight 1 each. *)
  let t = Trace.create ~ram_size:1 in
  Trace.add t ~cycle:1 ~addr:0 ~width:1 ~kind:Trace.Read;
  Trace.add t ~cycle:2 ~addr:0 ~width:1 ~kind:Trace.Read;
  Trace.seal t ~total_cycles:2;
  let d = Defuse.analyze t in
  Alcotest.(check int) "two experiment classes x 8 bits" 16
    (Defuse.experiment_count d);
  Alcotest.(check int) "no benign weight" 0 (Defuse.known_benign_weight d)

let test_defuse_find_errors () =
  let d = figure1_defuse () in
  Alcotest.check_raises "cycle 0" (Invalid_argument "Defuse.find: cycle outside run")
    (fun () -> ignore (Defuse.find d ~cycle:0 ~byte:0));
  Alcotest.check_raises "byte out" (Invalid_argument "Defuse.find: byte outside RAM")
    (fun () -> ignore (Defuse.find d ~cycle:1 ~byte:1))

(* Random-trace generator for the partition property. *)
let gen_trace =
  let open QCheck.Gen in
  let ram_size = 4 in
  let* n_accesses = int_range 0 30 in
  let* cycles = int_range (Stdlib.max 1 n_accesses) 60 in
  let* raw =
    list_repeat n_accesses
      (triple (int_range 1 cycles) (int_range 0 (ram_size - 1)) bool)
  in
  (* Sort by cycle and drop duplicate (cycle, byte) pairs so at most one
     access per byte per cycle. *)
  let sorted = List.sort (fun (a, _, _) (b, _, _) -> compare a b) raw in
  let seen = Hashtbl.create 16 in
  let accesses =
    List.filter
      (fun (c, b, _) ->
        if Hashtbl.mem seen (c, b) then false
        else begin
          Hashtbl.replace seen (c, b) ();
          true
        end)
      sorted
  in
  let t = Trace.create ~ram_size in
  List.iter
    (fun (cycle, addr, is_read) ->
      Trace.add t ~cycle ~addr ~width:1
        ~kind:(if is_read then Trace.Read else Trace.Write))
    accesses;
  Trace.seal t ~total_cycles:cycles;
  return t

let arbitrary_trace = QCheck.make gen_trace

let qcheck_partition_exact =
  QCheck.Test.make ~name:"def/use classes partition the fault space exactly"
    ~count:300 arbitrary_trace (fun t ->
      let d = Defuse.analyze t in
      (* 1. Weights sum to the fault-space size. *)
      let total_weight =
        8 * Array.fold_left (fun acc c -> acc + Defuse.weight c) 0 (Defuse.classes d)
      in
      total_weight = Defuse.fault_space_size d
      (* 2. Every coordinate is found and within its class bounds. *)
      && (let ok = ref true in
          for cycle = 1 to Defuse.total_cycles d do
            for byte = 0 to Defuse.ram_size d - 1 do
              let c = Defuse.find d ~cycle ~byte in
              if
                c.Defuse.byte <> byte || cycle < c.Defuse.t_start
                || cycle > c.Defuse.t_end
              then ok := false
            done
          done;
          !ok)
      (* 3. Bookkeeping consistency. *)
      && Defuse.known_benign_weight d
         + (8
           * Array.fold_left
               (fun acc c ->
                 if c.Defuse.kind = Defuse.Experiment then acc + Defuse.weight c
                 else acc)
               0 (Defuse.classes d))
         = Defuse.fault_space_size d)

(* ------------------------------------------------------------------ *)
(* Fault-space geometry                                               *)
(* ------------------------------------------------------------------ *)

let test_faultspace_size () =
  Alcotest.(check int) "w" (12 * 16) (Coordspace.size ~total_cycles:12 ~ram_size:2)

let test_faultspace_contains () =
  let c total_cycles ram_size cycle bit =
    Coordspace.contains ~total_cycles ~ram_size { Coordspace.cycle; bit }
  in
  Alcotest.(check bool) "inside" true (c 10 2 1 0);
  Alcotest.(check bool) "last" true (c 10 2 10 15);
  Alcotest.(check bool) "cycle 0" false (c 10 2 0 0);
  Alcotest.(check bool) "cycle beyond" false (c 10 2 11 0);
  Alcotest.(check bool) "bit beyond" false (c 10 2 1 16)

let test_faultspace_iter_count () =
  let n = ref 0 in
  Coordspace.iter ~total_cycles:7 ~ram_size:3 (fun _ -> incr n);
  Alcotest.(check int) "count" (7 * 24) !n

let test_faultspace_sampling () =
  let rng = Prng.create ~seed:1L in
  for _ = 1 to 1000 do
    let c = Coordspace.sample_uniform rng ~total_cycles:9 ~ram_size:2 in
    if not (Coordspace.contains ~total_cycles:9 ~ram_size:2 c) then
      Alcotest.fail "sampled coordinate outside space"
  done

let test_canonical_injection () =
  let d = figure1_defuse () in
  let cls = (Defuse.experiment_classes d).(0) in
  let coord = Coordspace.canonical_injection cls ~bit_in_byte:3 in
  Alcotest.(check int) "at the read cycle" 11 coord.Coordspace.cycle;
  Alcotest.(check int) "right bit" 3 coord.Coordspace.bit;
  Alcotest.check_raises "bad bit"
    (Invalid_argument "Coordspace.canonical_injection: bit outside byte")
    (fun () -> ignore (Coordspace.canonical_injection cls ~bit_in_byte:8))

let test_class_and_bit () =
  let d = figure1_defuse () in
  let cls, bit = Coordspace.class_and_bit d { Coordspace.cycle = 7; bit = 5 } in
  Alcotest.(check int) "bit in byte" 5 bit;
  Alcotest.(check bool) "the experiment class" true
    (cls.Defuse.kind = Defuse.Experiment && cls.Defuse.t_start = 5)

let suite =
  ( "trace",
    [
      Alcotest.test_case "trace basics" `Quick test_trace_basic;
      Alcotest.test_case "trace validation" `Quick test_trace_validation;
      Alcotest.test_case "trace unsealed" `Quick test_trace_unsealed;
      Alcotest.test_case "word expands to bytes" `Quick test_byte_expansion;
      Alcotest.test_case "trace growth" `Quick test_trace_growth;
      Alcotest.test_case "figure-1 classes" `Quick test_defuse_figure1;
      Alcotest.test_case "initial contents are defs" `Quick test_defuse_initial_read;
      Alcotest.test_case "untouched byte dormant" `Quick test_defuse_untouched_byte;
      Alcotest.test_case "back-to-back reads" `Quick test_defuse_back_to_back;
      Alcotest.test_case "find errors" `Quick test_defuse_find_errors;
      QCheck_alcotest.to_alcotest qcheck_partition_exact;
      Alcotest.test_case "fault-space size" `Quick test_faultspace_size;
      Alcotest.test_case "contains" `Quick test_faultspace_contains;
      Alcotest.test_case "iter count" `Quick test_faultspace_iter_count;
      Alcotest.test_case "uniform sampling in bounds" `Quick test_faultspace_sampling;
      Alcotest.test_case "canonical injection" `Quick test_canonical_injection;
      Alcotest.test_case "class_and_bit" `Quick test_class_and_bit;
    ] )
