(* Worker-crash torture tests for the process backend — the slow,
   adversarial matrix kept out of @tier1 and run by `dune build @torture`
   (see DESIGN.md §7): every crash mode (clean nonzero exit, uncaught
   exception, SIGKILL between shards, SIGKILL mid-append) injected into
   journaled campaigns, on fixed fixtures and on qcheck-random programs,
   always asserting the same three properties — the parent reports the
   death, the campaign journal stays CRC-valid, and a --resume run
   completes bit-identically to the serial scan. *)

let () = Worker.guard ()

let hi_golden = lazy (Golden.run (Hi.program ()))
let hi_serial = lazy (Scan.pruned (Lazy.force hi_golden))
let flag1_golden = lazy (Golden.run (Flag1.baseline ()))
let flag1_serial = lazy (Scan.pruned (Lazy.force flag1_golden))

let check_scans_identical msg serial parallel =
  Alcotest.(check bool) (msg ^ " (structural)") true (serial = parallel);
  Alcotest.(check string)
    (msg ^ " (serialised)")
    (Csv_io.to_string serial)
    (Csv_io.to_string parallel)

let with_temp_file f =
  let path = Filename.temp_file "fitorture" ".journal" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        (path :: List.init 8 (Printf.sprintf "%s.seg%d" path)))
    (fun () -> f path)

let with_torture value f =
  Unix.putenv Worker.torture_var value;
  Fun.protect ~finally:(fun () -> Unix.putenv Worker.torture_var "") f

let policy ~journal ?(resume = false) ?shard_size () =
  { Spec.default_policy with Spec.journal = Some journal; resume; shard_size }

(* ------------------------------------------------------------------ *)
(* Differential: Processes = serial on the fixtures, any -j           *)
(* ------------------------------------------------------------------ *)

let test_differential_fixtures () =
  List.iter
    (fun (name, serial, golden) ->
      List.iter
        (fun jobs ->
          check_scans_identical
            (Printf.sprintf "%s processes -j %d" name jobs)
            (Lazy.force serial)
            (Engine.run_spec ~backend:Pool.Processes ~jobs
               (Spec.of_golden (Lazy.force golden))))
        [ 1; 2; 3 ])
    [ ("hi", hi_serial, hi_golden); ("flag1", flag1_serial, flag1_golden) ]

(* ------------------------------------------------------------------ *)
(* The crash matrix                                                   *)
(* ------------------------------------------------------------------ *)

(* Inject [mode] into every worker after one completed shard, over a
   journaled 2-worker flag1 campaign with one class per shard; then
   resume with the hook cleared. *)
let crash_round_trip mode =
  let serial = Lazy.force flag1_serial in
  let golden = Lazy.force flag1_golden in
  with_temp_file (fun path ->
      let spec resume =
        Spec.of_golden
          ~policy:(policy ~journal:path ~resume ~shard_size:1 ())
          golden
      in
      (match
         with_torture
           (Printf.sprintf "%s:1" mode)
           (fun () ->
             Engine.run_spec ~backend:Pool.Processes ~jobs:2 (spec false))
       with
      | _ -> Alcotest.failf "%s: expected Worker_failed" mode
      | exception Engine.Worker_failed msg ->
          Alcotest.(check bool)
            (mode ^ ": failure names the cell") true
            (String.length msg > 0
            && String.starts_with ~prefix:"flag1" msg));
      (* The campaign journal holds the shards completed before the
         crash — CRC-valid to the last byte (only worker segments may be
         torn, and their torn tails are never merged). *)
      (match Journal.replay path with
      | Some (_, records, Journal.Clean) ->
          Alcotest.(check bool)
            (mode ^ ": progress was journalled") true
            (List.length records >= 1)
      | Some (_, _, _) ->
          Alcotest.failf "%s: campaign journal not clean after crash" mode
      | None -> Alcotest.failf "%s: campaign journal unreadable" mode);
      let snap = ref None in
      let resumed =
        Engine.run_spec ~backend:Pool.Processes ~jobs:2
          ~observe:(fun s -> snap := Some s)
          (spec true)
      in
      check_scans_identical (mode ^ ": crash + resume = serial") serial resumed;
      match !snap with
      | None -> Alcotest.fail "observe never called"
      | Some s ->
          Alcotest.(check bool)
            (mode ^ ": resumed without re-conducting") true
            (s.Progress.resumed_classes > 0))

let test_crash_exit () = crash_round_trip "exit"
let test_crash_raise () = crash_round_trip "raise"
let test_crash_sigkill () = crash_round_trip "sigkill"
let test_crash_torn () = crash_round_trip "torn"

(* A worker killed before conducting anything: the whole cell replays. *)
let test_crash_immediately () =
  let serial = Lazy.force hi_serial in
  let golden = Lazy.force hi_golden in
  with_temp_file (fun path ->
      (match
         with_torture "sigkill:0" (fun () ->
             Engine.run_spec ~backend:Pool.Processes ~jobs:2
               (Spec.of_golden
                  ~policy:(policy ~journal:path ~shard_size:1 ())
                  golden))
       with
      | _ -> Alcotest.fail "expected Worker_failed"
      | exception Engine.Worker_failed _ -> ());
      let resumed =
        Engine.run_spec ~backend:Pool.Processes ~jobs:2
          (Spec.of_golden
             ~policy:(policy ~journal:path ~resume:true ~shard_size:1 ())
             golden)
      in
      check_scans_identical "immediate kill + resume" serial resumed)

(* ------------------------------------------------------------------ *)
(* qcheck: random programs under the crash matrix                     *)
(* ------------------------------------------------------------------ *)

let random_golden seed =
  let open Builder in
  let k = 1 + (seed mod 5) in
  let source =
    prog
      ~name:(Printf.sprintf "trand%d" seed)
      [ global "acc" ~init:[ seed mod 11 ]; array "buf" 4 ~init:[ 2; 7; 1; 8 ] ]
      [
        func "main" ~locals:[ "i" ]
          (for_ "i" ~from:(i 0) ~below:(i k)
             [
               setg "acc" (g "acc" +: elem "buf" (l "i" %: i 4));
               set_elem "buf" (l "i" %: i 4) (g "acc" ^: i seed);
             ]
          @ [ out (g "acc" &: i 255); ret_unit ]);
      ]
  in
  Golden.run (Codegen.compile source)

let qcheck_differential_memory =
  QCheck.Test.make
    ~name:"torture: processes = serial on random programs (memory)" ~count:6
    QCheck.(pair (int_bound 10_000) (int_range 1 3))
    (fun (seed, jobs) ->
      let golden = random_golden seed in
      Scan.pruned golden
      = Engine.run_spec ~backend:Pool.Processes ~jobs (Spec.of_golden golden))

let qcheck_differential_registers =
  QCheck.Test.make
    ~name:"torture: processes = serial on random programs (registers)"
    ~count:4
    QCheck.(pair (int_bound 10_000) (int_range 1 3))
    (fun (seed, jobs) ->
      let open Builder in
      let source =
        prog
          ~name:(Printf.sprintf "rrand%d" seed)
          [ global "x" ~init:[ seed mod 13 ] ]
          [
            func "main" ~locals:[]
              [ setg "x" (g "x" *: i 3 +: i (seed mod 5));
                out (g "x" &: i 255); ret_unit ];
          ]
      in
      let rs = Regspace.analyze (Codegen.compile source) in
      Regspace.scan rs
      = Engine.run_spec ~backend:Pool.Processes ~jobs (Spec.of_regspace rs))

let qcheck_sigkill_resume =
  QCheck.Test.make
    ~name:"torture: sigkill + resume is bit-identical on random programs"
    ~count:4
    QCheck.(int_bound 10_000)
    (fun seed ->
      let golden = random_golden seed in
      with_temp_file (fun path ->
          let spec resume =
            Spec.of_golden
              ~policy:(policy ~journal:path ~resume ~shard_size:1 ())
              golden
          in
          let died =
            match
              with_torture "sigkill:1" (fun () ->
                  Engine.run_spec ~backend:Pool.Processes ~jobs:2 (spec false))
            with
            | _ -> false
            | exception Engine.Worker_failed _ -> true
          in
          let resumed =
            Engine.run_spec ~backend:Pool.Processes ~jobs:2 (spec true)
          in
          died && Scan.pruned golden = resumed))

let () =
  Alcotest.run "fi-torture"
    [
      ( "torture",
        [
          Alcotest.test_case "processes = serial (fixtures, j 1-3)" `Slow
            test_differential_fixtures;
          Alcotest.test_case "crash: clean nonzero exit" `Slow test_crash_exit;
          Alcotest.test_case "crash: uncaught exception" `Slow test_crash_raise;
          Alcotest.test_case "crash: sigkill between shards" `Slow
            test_crash_sigkill;
          Alcotest.test_case "crash: sigkill mid-append (torn segment)" `Slow
            test_crash_torn;
          Alcotest.test_case "crash: killed before any shard" `Slow
            test_crash_immediately;
          QCheck_alcotest.to_alcotest qcheck_differential_memory;
          QCheck_alcotest.to_alcotest qcheck_differential_registers;
          QCheck_alcotest.to_alcotest qcheck_sigkill_resume;
        ] );
    ]
