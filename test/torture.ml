(* Worker-crash torture tests for the process and sockets backends —
   the slow, adversarial matrix kept out of @tier1 and run by
   `dune build @torture` (see DESIGN.md §7): every crash mode (clean
   nonzero exit, uncaught exception, SIGKILL between shards, SIGKILL
   mid-append, hang, stall, poisoned shard) injected into journaled
   campaigns, on fixed fixtures and on qcheck-random programs, asserting
   the same properties — the parent reports the death, the campaign
   journal stays CRC-valid, and either supervision heals the campaign in
   place (bit-identical to the serial scan, no manual --resume) or a
   --resume run completes bit-identically.  The same matrix then runs
   over TCP (loopback daemons, DESIGN.md §11): crash modes injected into
   remote conducting workers, half-open peers, and a whole fleet
   SIGKILLed mid-campaign with --resume healing the journal.

   `dune build @torture-smoke` sets FI_TORTURE_SMOKE=1 and runs only
   the fast representative subset (one test per supervision mechanism,
   a few seconds total). *)

let () = Worker.guard ()
let () = Remote.guard ()
let () = Service.guard ()

let smoke = Sys.getenv_opt "FI_TORTURE_SMOKE" = Some "1"

let hi_golden = lazy (Golden.run (Hi.program ()))
let hi_serial = lazy (Scan.pruned (Lazy.force hi_golden))
let flag1_golden = lazy (Golden.run (Flag1.baseline ()))
let flag1_serial = lazy (Scan.pruned (Lazy.force flag1_golden))

let check_scans_identical msg serial parallel =
  Alcotest.(check bool) (msg ^ " (structural)") true (serial = parallel);
  Alcotest.(check string)
    (msg ^ " (serialised)")
    (Csv_io.to_string serial)
    (Csv_io.to_string parallel)

let with_temp_file f =
  let path = Filename.temp_file "fitorture" ".journal" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        (path :: List.init 32 (Printf.sprintf "%s.seg%d" path)))
    (fun () -> f path)

let with_torture value f =
  Unix.putenv Worker.torture_var value;
  Fun.protect ~finally:(fun () -> Unix.putenv Worker.torture_var "") f

let policy ~journal ?(resume = false) ?shard_size () =
  Spec.make_policy ~journal ~resume ?shard_size ()

(* ------------------------------------------------------------------ *)
(* Differential: Processes = serial on the fixtures, any -j           *)
(* ------------------------------------------------------------------ *)

let test_differential_fixtures () =
  List.iter
    (fun (name, serial, golden) ->
      List.iter
        (fun jobs ->
          check_scans_identical
            (Printf.sprintf "%s processes -j %d" name jobs)
            (Lazy.force serial)
            (Engine.run_spec ~backend:Pool.Processes ~jobs
               (Spec.of_golden (Lazy.force golden))))
        [ 1; 2; 3 ])
    [ ("hi", hi_serial, hi_golden); ("flag1", flag1_serial, flag1_golden) ]

(* ------------------------------------------------------------------ *)
(* The crash matrix                                                   *)
(* ------------------------------------------------------------------ *)

(* Inject [mode] into every worker after one completed shard, over a
   journaled 2-worker flag1 campaign with one class per shard; then
   resume with the hook cleared. *)
let crash_round_trip mode =
  let serial = Lazy.force flag1_serial in
  let golden = Lazy.force flag1_golden in
  with_temp_file (fun path ->
      let spec resume =
        Spec.of_golden
          ~policy:(policy ~journal:path ~resume ~shard_size:1 ())
          golden
      in
      (match
         with_torture
           (Printf.sprintf "%s:1" mode)
           (fun () ->
             Engine.run_spec ~backend:Pool.Processes ~jobs:2 (spec false))
       with
      | _ -> Alcotest.failf "%s: expected Worker_failed" mode
      | exception Engine.Worker_failed msg ->
          Alcotest.(check bool)
            (mode ^ ": failure names the cell") true
            (String.length msg > 0
            && String.starts_with ~prefix:"flag1" msg));
      (* The campaign journal holds the shards completed before the
         crash — CRC-valid to the last byte (only worker segments may be
         torn, and their torn tails are never merged). *)
      (match Journal.replay path with
      | Some (_, records, Journal.Clean) ->
          Alcotest.(check bool)
            (mode ^ ": progress was journalled") true
            (List.length records >= 1)
      | Some (_, _, _) ->
          Alcotest.failf "%s: campaign journal not clean after crash" mode
      | None -> Alcotest.failf "%s: campaign journal unreadable" mode);
      let snap = ref None in
      let resumed =
        Engine.run_spec ~backend:Pool.Processes ~jobs:2
          ~observe:(fun s -> snap := Some s)
          (spec true)
      in
      check_scans_identical (mode ^ ": crash + resume = serial") serial resumed;
      match !snap with
      | None -> Alcotest.fail "observe never called"
      | Some s ->
          Alcotest.(check bool)
            (mode ^ ": resumed without re-conducting") true
            (s.Progress.resumed_classes > 0))

let test_crash_exit () = crash_round_trip "exit"
let test_crash_raise () = crash_round_trip "raise"
let test_crash_sigkill () = crash_round_trip "sigkill"
let test_crash_torn () = crash_round_trip "torn"

(* A worker killed before conducting anything: the whole cell replays. *)
let test_crash_immediately () =
  let serial = Lazy.force hi_serial in
  let golden = Lazy.force hi_golden in
  with_temp_file (fun path ->
      (match
         with_torture "sigkill:0" (fun () ->
             Engine.run_spec ~backend:Pool.Processes ~jobs:2
               (Spec.of_golden
                  ~policy:(policy ~journal:path ~shard_size:1 ())
                  golden))
       with
      | _ -> Alcotest.fail "expected Worker_failed"
      | exception Engine.Worker_failed _ -> ());
      let resumed =
        Engine.run_spec ~backend:Pool.Processes ~jobs:2
          (Spec.of_golden
             ~policy:(policy ~journal:path ~resume:true ~shard_size:1 ())
             golden)
      in
      check_scans_identical "immediate kill + resume" serial resumed)

(* Stride churn across a crash: the checkpoint stride is excluded from
   the journal fingerprint, so a campaign whose workers were SIGKILLed
   under one snapshot-ladder stride must --resume under a different one
   (here: fine ladder before the crash, replay semantics after) without
   Journal_mismatch and to the bit-identical result. *)
let test_crash_stride_churn () =
  let serial = Lazy.force flag1_serial in
  let golden = Lazy.force flag1_golden in
  with_temp_file (fun path ->
      let spec ~resume ~stride =
        Spec.of_golden
          ~policy:
            (Spec.make_policy ~journal:path ~resume ~shard_size:1
               ~checkpoint_stride:stride ())
          golden
      in
      (match
         with_torture "sigkill:1" (fun () ->
             Engine.run_spec ~backend:Pool.Processes ~jobs:2
               (spec ~resume:false ~stride:8))
       with
      | _ -> Alcotest.fail "expected Worker_failed"
      | exception Engine.Worker_failed _ -> ());
      let snap = ref None in
      let resumed =
        Engine.run_spec ~backend:Pool.Processes ~jobs:2
          ~observe:(fun s -> snap := Some s)
          (spec ~resume:true ~stride:0)
      in
      check_scans_identical "crash at stride 8, resume at stride 0" serial
        resumed;
      match !snap with
      | None -> Alcotest.fail "observe never called"
      | Some s ->
          Alcotest.(check bool) "kept the pre-crash shards" true
            (s.Progress.resumed_classes > 0))

(* ------------------------------------------------------------------ *)
(* qcheck: random programs under the crash matrix                     *)
(* ------------------------------------------------------------------ *)

let random_golden seed =
  let open Builder in
  let k = 1 + (seed mod 5) in
  let source =
    prog
      ~name:(Printf.sprintf "trand%d" seed)
      [ global "acc" ~init:[ seed mod 11 ]; array "buf" 4 ~init:[ 2; 7; 1; 8 ] ]
      [
        func "main" ~locals:[ "i" ]
          (for_ "i" ~from:(i 0) ~below:(i k)
             [
               setg "acc" (g "acc" +: elem "buf" (l "i" %: i 4));
               set_elem "buf" (l "i" %: i 4) (g "acc" ^: i seed);
             ]
          @ [ out (g "acc" &: i 255); ret_unit ]);
      ]
  in
  Golden.run (Codegen.compile source)

let qcheck_differential_memory =
  QCheck.Test.make
    ~name:"torture: processes = serial on random programs (memory)" ~count:6
    QCheck.(pair (int_bound 10_000) (int_range 1 3))
    (fun (seed, jobs) ->
      let golden = random_golden seed in
      Scan.pruned golden
      = Engine.run_spec ~backend:Pool.Processes ~jobs (Spec.of_golden golden))

let qcheck_differential_registers =
  QCheck.Test.make
    ~name:"torture: processes = serial on random programs (registers)"
    ~count:4
    QCheck.(pair (int_bound 10_000) (int_range 1 3))
    (fun (seed, jobs) ->
      let open Builder in
      let source =
        prog
          ~name:(Printf.sprintf "rrand%d" seed)
          [ global "x" ~init:[ seed mod 13 ] ]
          [
            func "main" ~locals:[]
              [ setg "x" (g "x" *: i 3 +: i (seed mod 5));
                out (g "x" &: i 255); ret_unit ];
          ]
      in
      let rs = Regspace.analyze (Codegen.compile source) in
      Regspace.scan rs
      = Engine.run_spec ~backend:Pool.Processes ~jobs (Spec.of_regspace rs))

(* ------------------------------------------------------------------ *)
(* Supervision: heal, exhaust, quarantine — and compose with resume   *)
(* ------------------------------------------------------------------ *)

let sup_policy ?journal ?(resume = false) ?shard_size ?shard_timeout
    ?(max_retries = 2) ?(quarantine = false) () =
  Spec.make_policy ?journal ~resume ?shard_size ?shard_timeout ~max_retries
    ~quarantine ()

(* Every worker wedges (silently, or chattily for [stall]) after its
   first completed shard — including retry workers.  Supervision must
   kill each one on deadline and keep re-dispatching until the campaign
   completes bit-identically, with no manual --resume and nothing
   quarantined: the fault is transient per worker, not tied to a
   shard. *)
let supervised_heal torture =
  let serial = Lazy.force hi_serial in
  let golden = Lazy.force hi_golden in
  let snap = ref None in
  let result =
    with_torture torture (fun () ->
        Engine.run_spec_result ~backend:Pool.Processes ~jobs:2
          ~observe:(fun s -> snap := Some s)
          (Spec.of_golden
             ~policy:(sup_policy ~shard_size:1 ~shard_timeout:0.4 ())
             golden))
  in
  check_scans_identical (torture ^ ": supervision healed in place") serial
    result.Engine.scan;
  Alcotest.(check int) (torture ^ ": nothing quarantined") 0
    (List.length result.Engine.quarantined);
  match !snap with
  | None -> Alcotest.fail "observe never called"
  | Some s ->
      Alcotest.(check bool) (torture ^ ": workers were killed") true
        (s.Progress.kills >= 1)

let test_heal_hang () = supervised_heal "hang:1"
let test_heal_stall () = supervised_heal "stall:1"

(* A shard that kills every worker it is assigned to, with quarantine
   OFF: the retry budget must be spent (journaled as supervision
   records), the campaign must fail loudly naming the exhausted shard —
   and a clean --resume run must then heal bit-identically, proving
   retry and resume compose. *)
let test_retry_exhaustion_then_resume () =
  let serial = Lazy.force hi_serial in
  let golden = Lazy.force hi_golden in
  with_temp_file (fun path ->
      (match
         with_torture "poison:0" (fun () ->
             Engine.run_spec ~backend:Pool.Processes ~jobs:2
               (Spec.of_golden
                  ~policy:
                    (sup_policy ~journal:path ~shard_size:1 ~max_retries:1 ())
                  golden))
       with
      | _ -> Alcotest.fail "expected Worker_failed on budget exhaustion"
      | exception Engine.Worker_failed msg ->
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec scan i =
              i + nn <= nh
              && (String.sub hay i nn = needle || scan (i + 1))
            in
            scan 0
          in
          Alcotest.(check bool) "failure names the exhausted budget" true
            (contains msg "retry budget exhausted"));
      (* The journal stayed clean and recorded the retry decisions. *)
      (match Journal.replay path with
      | Some (_, records, Journal.Clean) ->
          Alcotest.(check bool) "supervision records journalled" true
            (List.exists
               (fun payload -> Runcell.parse_supervision payload <> None)
               records)
      | _ -> Alcotest.fail "campaign journal not clean after exhaustion");
      let snap = ref None in
      let resumed =
        Engine.run_spec ~backend:Pool.Processes ~jobs:2
          ~observe:(fun s -> snap := Some s)
          (Spec.of_golden
             ~policy:
               (sup_policy ~journal:path ~resume:true ~shard_size:1
                  ~max_retries:1 ())
             golden)
      in
      check_scans_identical "exhaustion + resume = serial" serial resumed;
      match !snap with
      | None -> Alcotest.fail "observe never called"
      | Some s ->
          Alcotest.(check bool) "healthy shard was recovered, not redone" true
            (s.Progress.resumed_classes > 0))

(* The same poisoned shard with quarantine ON: the campaign completes,
   isolates exactly that shard, returns exact results everywhere else —
   and a clean --resume heals to the full serial scan. *)
let test_quarantine_then_resume () =
  let serial = Lazy.force flag1_serial in
  let golden = Lazy.force flag1_golden in
  with_temp_file (fun path ->
      let degraded =
        with_torture "poison:1" (fun () ->
            Engine.run_spec_result ~backend:Pool.Processes ~jobs:3
              (Spec.of_golden
                 ~policy:
                   (sup_policy ~journal:path ~shard_size:1 ~max_retries:1
                      ~quarantine:true ())
                 golden))
      in
      (match degraded.Engine.quarantined with
      | [ q ] ->
          Alcotest.(check int) "the poisoned shard" 1 q.Engine.q_shard;
          Alcotest.(check int) "budget fully burned" 2 q.Engine.q_attempts;
          let excluded = q.Engine.q_class_indices in
          let total = Array.length serial.Scan.experiments / 8 in
          for ci = 0 to total - 1 do
            if not (Array.exists (( = ) ci) excluded) then
              Alcotest.(check bool)
                (Printf.sprintf "class %d exact despite quarantine" ci)
                true
                (Array.sub degraded.Engine.scan.Scan.experiments (8 * ci) 8
                = Array.sub serial.Scan.experiments (8 * ci) 8)
          done
      | qs ->
          Alcotest.failf "expected exactly one quarantined shard, got %d"
            (List.length qs));
      let healed =
        Engine.run_spec_result ~backend:Pool.Processes ~jobs:3
          (Spec.of_golden
             ~policy:
               (sup_policy ~journal:path ~resume:true ~shard_size:1
                  ~max_retries:1 ~quarantine:true ())
             golden)
      in
      check_scans_identical "quarantine + resume = serial" serial
        healed.Engine.scan;
      Alcotest.(check int) "quarantine cleared on resume" 0
        (List.length healed.Engine.quarantined))

(* Sustained churn: EVERY worker (including replacements) is SIGKILLed
   after one completed shard, for the whole campaign.  Each death makes
   progress, so no shard may be charged a retry attempt — the campaign
   must complete bit-identically with nothing quarantined.  (Regression:
   charging the next-in-line shard on every death let churn exhaust a
   healthy shard's budget and quarantine it.) *)
let test_sustained_churn_heals () =
  let serial = Lazy.force flag1_serial in
  let golden = Lazy.force flag1_golden in
  let shard_size = Array.length serial.Scan.experiments / 8 / 8 in
  let snap = ref None in
  let result =
    with_torture "sigkill:1" (fun () ->
        Engine.run_spec_result ~backend:Pool.Processes ~jobs:2
          ~observe:(fun s -> snap := Some s)
          (Spec.of_golden
             ~policy:(sup_policy ~shard_size ~quarantine:true ())
             golden))
  in
  check_scans_identical "churn healed bit-identically" serial
    result.Engine.scan;
  Alcotest.(check int) "nothing quarantined under churn" 0
    (List.length result.Engine.quarantined);
  match !snap with
  | None -> Alcotest.fail "observe never called"
  | Some s ->
      Alcotest.(check bool) "churn forced retries" true
        (s.Progress.retries >= 1)

(* Supervision on an UNDISTURBED campaign must be invisible: same scan,
   no kills, no retries, nothing quarantined. *)
let test_supervision_invisible_when_healthy () =
  let serial = Lazy.force flag1_serial in
  let snap = ref None in
  let result =
    Engine.run_spec_result ~backend:Pool.Processes ~jobs:3
      ~observe:(fun s -> snap := Some s)
      (Spec.of_golden
         ~policy:(sup_policy ~shard_timeout:30. ~quarantine:true ())
         (Lazy.force flag1_golden))
  in
  check_scans_identical "supervised healthy run = serial" serial
    result.Engine.scan;
  Alcotest.(check int) "nothing quarantined" 0
    (List.length result.Engine.quarantined);
  match !snap with
  | None -> Alcotest.fail "observe never called"
  | Some s ->
      Alcotest.(check int) "no kills" 0 s.Progress.kills;
      Alcotest.(check int) "no retries" 0 s.Progress.retries

let qcheck_supervised_crash_heals =
  QCheck.Test.make
    ~name:"torture: supervision heals transient crashes on random programs"
    ~count:4
    QCheck.(pair (int_bound 10_000) (int_range 2 3))
    (fun (seed, jobs) ->
      let golden = random_golden seed in
      let result =
        with_torture "exit:0:0" (fun () ->
            Engine.run_spec_result ~backend:Pool.Processes ~jobs
              (Spec.of_golden ~policy:(sup_policy ()) golden))
      in
      result.Engine.quarantined = []
      && Scan.pruned golden = result.Engine.scan)

let qcheck_sigkill_resume =
  QCheck.Test.make
    ~name:"torture: sigkill + resume is bit-identical on random programs"
    ~count:4
    QCheck.(int_bound 10_000)
    (fun seed ->
      let golden = random_golden seed in
      with_temp_file (fun path ->
          let spec resume =
            Spec.of_golden
              ~policy:(policy ~journal:path ~resume ~shard_size:1 ())
              golden
          in
          let died =
            match
              with_torture "sigkill:1" (fun () ->
                  Engine.run_spec ~backend:Pool.Processes ~jobs:2 (spec false))
            with
            | _ -> false
            | exception Engine.Worker_failed _ -> true
          in
          let resumed =
            Engine.run_spec ~backend:Pool.Processes ~jobs:2 (spec true)
          in
          died && Scan.pruned golden = resumed))

(* ------------------------------------------------------------------ *)
(* The crash matrix over the network (Pool.Sockets on the loopback)   *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let with_daemon ?(workers = 2) f =
  match Remote.spawn_daemon ~workers () with
  | Error e -> Alcotest.fail e
  | Ok (pid, addr) ->
      Fun.protect ~finally:(fun () -> Remote.kill_daemon pid) (fun () -> f addr)

let sockets_of addr = Pool.Sockets [ Addr.to_string addr ]

(* The crash_round_trip story told over TCP, with the extra twist the
   wire makes possible: the torture-struck fleet is torn down entirely
   after the failure, and a FRESH daemon heals the journal with resume
   — remote workers vanishing between runs must cost nothing but the
   unfinished shards.  The daemon must be spawned inside [with_torture]:
   it inherits the environment at spawn, and its conducting children
   inherit it from the daemon. *)
let net_round_trip mode =
  let serial = Lazy.force flag1_serial in
  let golden = Lazy.force flag1_golden in
  with_temp_file (fun path ->
      let spec resume =
        Spec.of_golden
          ~policy:(policy ~journal:path ~resume ~shard_size:1 ())
          golden
      in
      with_torture
        (Printf.sprintf "%s:1" mode)
        (fun () ->
          with_daemon (fun addr ->
              match
                Engine.run_spec ~backend:(sockets_of addr) ~jobs:2 (spec false)
              with
              | _ -> Alcotest.failf "net %s: expected Worker_failed" mode
              | exception Engine.Worker_failed msg ->
                  Alcotest.(check bool)
                    (mode ^ ": failure names the remote worker")
                    true
                    (contains msg "remote worker")));
      (match Journal.replay path with
      | Some (_, records, Journal.Clean) ->
          Alcotest.(check bool)
            (mode ^ ": progress was journalled over the wire")
            true
            (List.length records >= 1)
      | Some (_, _, _) ->
          Alcotest.failf "net %s: campaign journal not clean" mode
      | None -> Alcotest.failf "net %s: campaign journal unreadable" mode);
      let snap = ref None in
      let resumed =
        with_daemon (fun addr ->
            Engine.run_spec ~backend:(sockets_of addr) ~jobs:2
              ~observe:(fun s -> snap := Some s)
              (spec true))
      in
      check_scans_identical
        (mode ^ ": remote crash + fresh fleet + resume = serial")
        serial resumed;
      match !snap with
      | None -> Alcotest.fail "observe never called"
      | Some s ->
          Alcotest.(check bool)
            (mode ^ ": resumed without re-conducting")
            true
            (s.Progress.resumed_classes > 0))

let test_net_crash_exit () = net_round_trip "exit"
let test_net_crash_raise () = net_round_trip "raise"
let test_net_crash_sigkill () = net_round_trip "sigkill"
let test_net_crash_torn () = net_round_trip "torn"

(* Wedged remote workers: supervision must notice the blown deadline,
   tear the connection down (the network's SIGKILL) and re-dispatch
   until the campaign heals in place — no manual resume. *)
let net_heal torture =
  let serial = Lazy.force hi_serial in
  let golden = Lazy.force hi_golden in
  let snap = ref None in
  let result =
    with_torture torture (fun () ->
        with_daemon (fun addr ->
            Engine.run_spec_result ~backend:(sockets_of addr) ~jobs:2
              ~observe:(fun s -> snap := Some s)
              (Spec.of_golden
                 ~policy:(sup_policy ~shard_size:1 ~shard_timeout:0.4 ())
                 golden)))
  in
  check_scans_identical (torture ^ ": supervision healed over the wire") serial
    result.Engine.scan;
  Alcotest.(check int) (torture ^ ": nothing quarantined") 0
    (List.length result.Engine.quarantined);
  match !snap with
  | None -> Alcotest.fail "observe never called"
  | Some s ->
      Alcotest.(check bool) (torture ^ ": connections were torn down") true
        (s.Progress.kills >= 1)

let test_net_heal_hang () = net_heal "hang:1"
let test_net_heal_stall () = net_heal "stall:1"

(* A poisoned shard on a remote fleet: budget burned, exactly that shard
   quarantined, everything else exact — then a fresh fleet resumes to
   the full serial scan.  Identical verdicts to the local backends. *)
let test_net_quarantine_then_resume () =
  let serial = Lazy.force flag1_serial in
  let golden = Lazy.force flag1_golden in
  with_temp_file (fun path ->
      let degraded =
        with_torture "poison:1" (fun () ->
            with_daemon ~workers:3 (fun addr ->
                Engine.run_spec_result ~backend:(sockets_of addr) ~jobs:3
                  (Spec.of_golden
                     ~policy:
                       (sup_policy ~journal:path ~shard_size:1 ~max_retries:1
                          ~quarantine:true ())
                     golden)))
      in
      (match degraded.Engine.quarantined with
      | [ q ] -> Alcotest.(check int) "the poisoned shard" 1 q.Engine.q_shard
      | qs ->
          Alcotest.failf "expected exactly one quarantined shard, got %d"
            (List.length qs));
      let healed =
        with_daemon ~workers:3 (fun addr ->
            Engine.run_spec_result ~backend:(sockets_of addr) ~jobs:3
              (Spec.of_golden
                 ~policy:
                   (sup_policy ~journal:path ~resume:true ~shard_size:1
                      ~max_retries:1 ~quarantine:true ())
                 golden))
      in
      check_scans_identical "net quarantine + resume = serial" serial
        healed.Engine.scan;
      Alcotest.(check int) "quarantine cleared on resume" 0
        (List.length healed.Engine.quarantined))

(* A half-open peer: accepts the connection, then goes silent.  The
   handshake deadline must convert it into a refusal at probe time and
   a loud Worker_failed before any shard is dispatched — never a hung
   campaign.  The silent peer runs on a domain (Unix.fork is off-limits
   once domains exist), and the handshake timeout is shrunk so the test
   takes tenths of a second, not the production ten. *)
let test_net_half_open () =
  let saved_c = !Remote.connect_timeout
  and saved_h = !Remote.handshake_timeout in
  Remote.connect_timeout := 2.0;
  Remote.handshake_timeout := 0.3;
  Fun.protect
    ~finally:(fun () ->
      Remote.connect_timeout := saved_c;
      Remote.handshake_timeout := saved_h)
    (fun () ->
      match Transport.listen { Addr.host = "127.0.0.1"; port = 0 } with
      | Error e -> Alcotest.fail e
      | Ok (lfd, addr) ->
          let stop = Atomic.make false in
          let server =
            Domain.spawn (fun () ->
                match Transport.accept lfd with
                | conn ->
                    while not (Atomic.get stop) do
                      Unix.sleepf 0.02
                    done;
                    Transport.close conn
                | exception _ -> ())
          in
          Fun.protect
            ~finally:(fun () ->
              Atomic.set stop true;
              (match Transport.connect ~timeout:1. addr with
              | Ok c -> Transport.close c
              | Error _ -> ());
              Sysio.close_quietly lfd;
              Domain.join server)
            (fun () ->
              (match Remote.probe addr with
              | Ok _ -> Alcotest.fail "half-open peer passed the probe"
              | Error _ -> ());
              match
                Engine.run_spec ~backend:(sockets_of addr) ~jobs:1
                  (Spec.of_golden (Lazy.force hi_golden))
              with
              | _ -> Alcotest.fail "expected Worker_failed"
              | exception Engine.Worker_failed msg ->
                  Alcotest.(check bool) "refusal names the host" true
                    (contains msg "worker host")))

(* The whole daemon SIGKILLed mid-campaign — every connection dies at
   once with shards in flight.  The journal must stay CRC-valid to the
   last merged record, and a fresh fleet + --resume must complete
   bit-identically: the acceptance scenario of DESIGN.md §11. *)
let test_net_daemon_vanishes_then_resume () =
  let serial = Lazy.force flag1_serial in
  let golden = Lazy.force flag1_golden in
  with_temp_file (fun path ->
      let spec resume =
        Spec.of_golden
          ~policy:(policy ~journal:path ~resume ~shard_size:1 ())
          golden
      in
      (match Remote.spawn_daemon ~workers:2 () with
      | Error e -> Alcotest.fail e
      | Ok (pid, addr) ->
          let killed = ref false in
          Fun.protect
            ~finally:(fun () -> if not !killed then Remote.kill_daemon pid)
            (fun () ->
              match
                Engine.run_spec ~backend:(sockets_of addr) ~jobs:2
                  ~observe:(fun s ->
                    (* First merged shard: pull the plug on the fleet. *)
                    if (not !killed) && s.Progress.shards_done >= 1 then begin
                      killed := true;
                      Remote.kill_daemon pid
                    end)
                  (spec false)
              with
              | _ -> Alcotest.fail "expected Worker_failed"
              | exception Engine.Worker_failed _ ->
                  Alcotest.(check bool) "the fleet was killed mid-campaign"
                    true !killed));
      (match Journal.replay path with
      | Some (_, records, Journal.Clean) ->
          Alcotest.(check bool) "journal survived the vanished fleet" true
            (List.length records >= 1)
      | _ -> Alcotest.fail "campaign journal not clean after daemon death");
      let resumed =
        with_daemon (fun addr ->
            Engine.run_spec ~backend:(sockets_of addr) ~jobs:2 (spec true))
      in
      check_scans_identical "vanished fleet + resume = serial" serial resumed)

(* ------------------------------------------------------------------ *)
(* Campaign service under adversity (DESIGN.md §12)                   *)
(* ------------------------------------------------------------------ *)

(* The service front door end to end, including its promise under the
   rudest client behaviour: a submitter that vanishes mid-campaign must
   not kill the campaign — the runner finishes, publishes to the result
   store, and the next submitter gets a cache hit. *)
let test_service_survives_disconnect () =
  let dir = Filename.temp_file "fitorture" ".store" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun name -> Sys.remove (Filename.concat dir name))
           (Sys.readdir dir)
       with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () ->
      let config =
        { Service.default_config with Service.artifacts = dir; jobs = 2 }
      in
      match Service.spawn_daemon ~config () with
      | Error e -> Alcotest.fail e
      | Ok (pid, addr) ->
          Fun.protect
            ~finally:(fun () -> Service.kill_daemon pid)
            (fun () ->
              let cell =
                Service.cell_of_spec (Spec.of_golden (Lazy.force hi_golden))
              in
              (* A client that submits and slams the connection shut. *)
              (match Transport.connect addr with
              | Error e -> Alcotest.fail e
              | Ok conn ->
                  (match Remote.shake conn ~fingerprint:"" with
                  | Ok _ -> ()
                  | Error e -> Alcotest.fail e);
                  Transport.send conn Frame.Submit
                    (Service.encode_submission [ cell ]);
                  Transport.close conn);
              (* The abandoned campaign must still finish and publish. *)
              let deadline = Unix.gettimeofday () +. 30. in
              while
                Cache.entries ~dir = []
                && Unix.gettimeofday () < deadline
              do
                Unix.sleepf 0.1
              done;
              Alcotest.(check bool) "abandoned campaign was published" true
                (Cache.entries ~dir <> []);
              (* ...and the next submitter gets it for free, exactly. *)
              match Service.submit ~addr [ cell ] with
              | Ok [ r ] ->
                  Alcotest.(check bool) "next submitter hits the store" true
                    r.Service.r_cached;
                  check_scans_identical "served scan = serial"
                    (Lazy.force hi_serial) r.Service.r_scan
              | Ok _ -> Alcotest.fail "unexpected result shape"
              | Error msg -> Alcotest.failf "follow-up submit failed: %s" msg))

let () =
  (* Each entry is [in_smoke_subset, test]: with FI_TORTURE_SMOKE=1
     (the @torture-smoke alias) only one fast representative per
     supervision mechanism runs — a few seconds instead of minutes. *)
  let matrix =
    [
      ( false,
        Alcotest.test_case "processes = serial (fixtures, j 1-3)" `Slow
          test_differential_fixtures );
      (true, Alcotest.test_case "crash: clean nonzero exit" `Slow test_crash_exit);
      ( false,
        Alcotest.test_case "crash: uncaught exception" `Slow test_crash_raise );
      ( false,
        Alcotest.test_case "crash: sigkill between shards" `Slow
          test_crash_sigkill );
      ( false,
        Alcotest.test_case "crash: sigkill mid-append (torn segment)" `Slow
          test_crash_torn );
      ( false,
        Alcotest.test_case "crash: killed before any shard" `Slow
          test_crash_immediately );
      ( true,
        Alcotest.test_case "crash then resume across a stride change" `Slow
          test_crash_stride_churn );
      (true, Alcotest.test_case "supervision heals hangs" `Slow test_heal_hang);
      ( false,
        Alcotest.test_case "supervision heals stalls" `Slow test_heal_stall );
      ( true,
        Alcotest.test_case "retry exhaustion, then resume" `Slow
          test_retry_exhaustion_then_resume );
      ( false,
        Alcotest.test_case "poisoned shard quarantined, then resume" `Slow
          test_quarantine_then_resume );
      ( false,
        Alcotest.test_case "sustained churn heals without quarantine" `Slow
          test_sustained_churn_heals );
      ( true,
        Alcotest.test_case "supervision invisible on a healthy run" `Slow
          test_supervision_invisible_when_healthy );
      ( true,
        Alcotest.test_case "net crash: clean nonzero exit" `Slow
          test_net_crash_exit );
      ( false,
        Alcotest.test_case "net crash: uncaught exception" `Slow
          test_net_crash_raise );
      ( false,
        Alcotest.test_case "net crash: sigkill between shards" `Slow
          test_net_crash_sigkill );
      ( false,
        Alcotest.test_case "net crash: corrupt frame then death" `Slow
          test_net_crash_torn );
      ( false,
        Alcotest.test_case "net supervision heals hangs" `Slow
          test_net_heal_hang );
      ( false,
        Alcotest.test_case "net supervision heals stalls" `Slow
          test_net_heal_stall );
      ( false,
        Alcotest.test_case "net poisoned shard quarantined, then resume" `Slow
          test_net_quarantine_then_resume );
      ( true,
        Alcotest.test_case "net half-open connection refused loudly" `Slow
          test_net_half_open );
      ( true,
        Alcotest.test_case "net daemon vanishes mid-campaign, resume heals"
          `Slow test_net_daemon_vanishes_then_resume );
      ( true,
        Alcotest.test_case
          "service: client disconnect survived, next submit hits cache" `Slow
          test_service_survives_disconnect );
      (false, QCheck_alcotest.to_alcotest qcheck_differential_memory);
      (false, QCheck_alcotest.to_alcotest qcheck_differential_registers);
      (false, QCheck_alcotest.to_alcotest qcheck_supervised_crash_heals);
      (false, QCheck_alcotest.to_alcotest qcheck_sigkill_resume);
    ]
  in
  let selected =
    List.filter_map (fun (fast, t) -> if (not smoke) || fast then Some t else None)
      matrix
  in
  Alcotest.run "fi-torture" [ ("torture", selected) ]
