(* Fault-model smoke (the @faultmodel-smoke alias, a CI gate): one tiny
   campaign cell per fault model — mem, reg, burst3, skip — each proven
   to (a) journal and resume from a torn tail bit-identically, and
   (b) round-trip through the content-addressed result cache.  A few
   seconds total; the exhaustive differential/backend matrix lives in
   test_faultspace.ml under @runtest. *)

let models =
  [ Faultspace.Bitflip_mem; Faultspace.Bitflip_reg; Faultspace.burst 3;
    Faultspace.Skip ]

(* A fixed small program, sized so every model yields several shards
   (the Hi fixture's 8 cycles collapse the skip space to one class). *)
let image =
  lazy
    (let open Builder in
     Codegen.compile
       (prog ~name:"smoke"
          [ global "acc" ~init:[ 3 ]; array "buf" 4 ~init:[ 5; 1; 4; 2 ] ]
          [
            func "main" ~locals:[ "i" ]
              (for_ "i" ~from:(i 0) ~below:(i 12)
                 [
                   setg "acc" (g "acc" +: elem "buf" (l "i" %: i 4));
                   set_elem "buf" (l "i" %: i 4) (g "acc" ^: i 29);
                 ]
              @ [ out (g "acc" &: i 255); ret_unit ]);
          ]))

let failures = ref 0

let check tag what ok =
  if not ok then (
    incr failures;
    Printf.printf "FAIL %-8s %s\n%!" tag what)

let with_temp_dir f =
  let dir = Filename.temp_file "fismoke" ".dir" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun name -> Sys.remove (Filename.concat dir name))
           (Sys.readdir dir)
       with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let with_temp_file f =
  let path = Filename.temp_file "fismoke" ".journal" in
  Fun.protect
    ~finally:(fun () -> (try Sys.remove path with Sys_error _ -> ()))
    (fun () -> f path)

let truncate_journal_to path ~records =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let lines = String.split_on_char '\n' text in
  let kept = List.filteri (fun i _ -> i <= records) lines in
  let oc = open_out_bin path in
  List.iter (fun l -> output_string oc (l ^ "\n")) kept;
  output_string oc "f00dfeed torn-shard-rec";
  close_out oc

let spec_of model policy =
  match model with
  | Faultspace.Bitflip_reg ->
      Spec.of_regspace ~policy (Regspace.analyze (Lazy.force image))
  | m -> Spec.of_golden ~policy ~model:m (Golden.run (Lazy.force image))

let smoke_journal_resume model =
  let tag = Faultspace.tag model in
  with_temp_file (fun path ->
      let policy = Spec.make_policy ~journal:path ~shard_size:3 () in
      let cold = Engine.run_spec ~jobs:2 (spec_of model policy) in
      check tag "cold run journals to completion"
        (Runcell.journal_finished path);
      check tag "journal records the model tag"
        (Runcell.journal_model_tag path = Some tag);
      let records =
        match Journal.load path with
        | Some (_, rs) -> List.length rs
        | None -> 0
      in
      check tag "journal has shards" (records > 2);
      truncate_journal_to path ~records:(records / 2);
      let resume_policy =
        { policy with
          Spec.durability = { policy.Spec.durability with Spec.resume = true }
        }
      in
      let resumed = Engine.run_spec ~jobs:2 (spec_of model resume_policy) in
      check tag "torn-tail resume is bit-identical" (cold = resumed);
      check tag "resumed journal finished again" (Runcell.journal_finished path);
      cold)

let smoke_cache_roundtrip model reference =
  let tag = Faultspace.tag model in
  with_temp_dir (fun dir ->
      let policy = Spec.make_policy ~catalogue:dir ~cache:dir () in
      let cold = Engine.run_spec_result ~jobs:2 (spec_of model policy) in
      check tag "cold cache run is a miss" (not cold.Engine.cached);
      check tag "cold cache run matches the journaled run"
        (cold.Engine.scan = reference);
      let warm = Engine.run_spec_result ~jobs:2 (spec_of model policy) in
      check tag "warm cache run is a hit" warm.Engine.cached;
      check tag "cache hit is bit-identical" (warm.Engine.scan = cold.Engine.scan))

let () =
  Worker.guard ();
  Remote.guard ();
  List.iter
    (fun model ->
      let reference = smoke_journal_resume model in
      smoke_cache_roundtrip model reference;
      Printf.printf "ok %-8s journal+resume+cache round-trip\n%!"
        (Faultspace.tag model))
    models;
  if !failures > 0 then (
    Printf.printf "faultmodel-smoke: %d failure(s)\n%!" !failures;
    exit 1)
  else print_endline "faultmodel-smoke: all models green"
