(* Tests for the campaign service (lib/service): the fair admission
   queue, the versioned wire codecs, and the daemon end-to-end —
   submissions conducted and streamed back, repeat submissions served
   from the result store, two concurrent clients each getting their own
   correct results, and shared-secret handshake authentication with a
   distinct error per failure mode. *)

let contains = Astring_contains.contains

let with_temp_dir f =
  let dir = Filename.temp_file "fisvc" ".artifacts" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun name -> Sys.remove (Filename.concat dir name))
           (Sys.readdir dir)
       with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

(* Re-exec guard for the concurrent-clients test below.  [Unix.fork]
   is unavailable once this binary has spawned domains, so the second
   client is a fresh copy of the test executable: it submits the DFT
   cell to the address named in the environment, checks the results
   against a local serial scan, and reports through its exit code. *)
let submit_helper_var = "FI_TEST_SUBMIT_HELPER"

let helper_guard () =
  match Sys.getenv_opt submit_helper_var with
  | None | Some "" -> ()
  | Some addr ->
      let addr = Addr.parse_exn addr in
      let cell_dft =
        Service.cell_of_spec
          (Spec.of_golden ~variant:"dft" (Golden.run (Hi.dft ())))
      in
      let ok =
        match Service.submit ~addr [ cell_dft ] with
        | Ok [ r ] ->
            r.Service.r_label = cell_dft.Service.c_benchmark ^ "/dft"
            && r.Service.r_scan
               = Scan.pruned ~variant:"dft" (Golden.run (Hi.dft ()))
            && r.Service.r_quarantined = []
        | _ -> false
      in
      exit (if ok then 0 else 1)

let spawn_helper var value =
  let env =
    Array.append (Unix.environment ()) [| Printf.sprintf "%s=%s" var value |]
  in
  Unix.create_process_env Sys.executable_name [| Sys.executable_name |] env
    Unix.stdin Unix.stdout Unix.stderr

(* ------------------------------------------------------------------ *)
(* Fairq                                                              *)
(* ------------------------------------------------------------------ *)

let test_fairq_round_robin () =
  let q = Fairq.create ~window:8 in
  List.iter
    (fun (c, j) ->
      match Fairq.admit q ~client:c j with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "unexpected refusal: %s" e)
    [ ("a", "a1"); ("a", "a2"); ("a", "a3"); ("b", "b1") ];
  Alcotest.(check int) "four pending" 4 (Fairq.pending q);
  Alcotest.(check int) "two clients" 2 (Fairq.clients q);
  let order = List.init 4 (fun _ -> Fairq.take q) in
  (* FIFO within a client, round-robin across clients: a flooding
     client (a) delays only itself. *)
  Alcotest.(check (list (option (pair string string))))
    "a1 b1 a2 a3"
    [
      Some ("a", "a1"); Some ("b", "b1"); Some ("a", "a2"); Some ("a", "a3");
    ]
    order;
  Alcotest.(check (option (pair string string))) "drained" None (Fairq.take q);
  Alcotest.(check int) "no clients left" 0 (Fairq.clients q)

let test_fairq_window () =
  let q = Fairq.create ~window:2 in
  Alcotest.(check bool) "first admitted" true
    (Fairq.admit q ~client:"a" 1 = Ok 1);
  Alcotest.(check bool) "second admitted" true
    (Fairq.admit q ~client:"a" 2 = Ok 2);
  (match Fairq.admit q ~client:"a" 3 with
  | Error msg ->
      Alcotest.(check bool) "refusal names the window" true
        (contains msg "admission window full")
  | Ok _ -> Alcotest.fail "third admission should refuse");
  (* Another client is unaffected by a's full window. *)
  Alcotest.(check bool) "b admitted" true (Fairq.admit q ~client:"b" 9 = Ok 1);
  (* Draining one of a's jobs frees a slot. *)
  ignore (Fairq.take q);
  Alcotest.(check bool) "a admitted after drain" true
    (Fairq.admit q ~client:"a" 3 = Ok 2);
  match Fairq.create ~window:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "window 0 should be rejected"

(* ------------------------------------------------------------------ *)
(* Wire codecs                                                        *)
(* ------------------------------------------------------------------ *)

let hi_cell () = Service.cell_of_spec (Spec.of_golden (Golden.run (Hi.program ())))

let test_wire_roundtrip () =
  let cell = hi_cell () in
  (match Service.decode_submission (Service.encode_submission [ cell ]) with
  | Some [ c ] ->
      Alcotest.(check string) "benchmark survives" cell.Service.c_benchmark
        c.Service.c_benchmark;
      Alcotest.(check bool) "program survives" true
        (c.Service.c_program = cell.Service.c_program)
  | _ -> Alcotest.fail "submission did not roundtrip");
  Alcotest.(check bool) "garbage submission rejected" true
    (Service.decode_submission "fi-svc v1\nnot marshal" = None);
  Alcotest.(check bool) "wrong magic rejected" true
    (Service.decode_submission (Service.encode_results []) = None);
  let r =
    {
      Service.r_label = "hi/baseline";
      r_scan = Scan.pruned (Golden.run (Hi.program ()));
      r_cached = true;
      r_quarantined =
        [ { Service.wq_shard = 1; wq_classes = 3; wq_attempts = 2;
            wq_cause = "hung" } ];
    }
  in
  match Service.decode_results (Service.encode_results [ r ]) with
  | Some [ r' ] ->
      Alcotest.(check bool) "result roundtrips" true (r' = r)
  | _ -> Alcotest.fail "results did not roundtrip"

(* ------------------------------------------------------------------ *)
(* Daemon end-to-end                                                  *)
(* ------------------------------------------------------------------ *)

let with_daemon ?secret_file f =
  with_temp_dir (fun dir ->
      let config =
        {
          Service.default_config with
          Service.artifacts = dir;
          jobs = 2;
          secret_file;
        }
      in
      match Service.spawn_daemon ~config () with
      | Error msg -> Alcotest.failf "daemon failed to start: %s" msg
      | Ok (pid, addr) ->
          Fun.protect ~finally:(fun () -> Service.kill_daemon pid) (fun () ->
              f ~dir ~addr))

let check_scans_identical msg serial parallel =
  Alcotest.(check bool) (msg ^ " (structural)") true (serial = parallel);
  Alcotest.(check string)
    (msg ^ " (serialised)")
    (Csv_io.to_string serial)
    (Csv_io.to_string parallel)

let test_submit_then_cache_hit () =
  with_daemon (fun ~dir:_ ~addr ->
      let serial = Scan.pruned (Golden.run (Hi.program ())) in
      let cell = hi_cell () in
      let progress = ref [] in
      let cold =
        match
          Service.submit ~addr
            ~on_progress:(fun line -> progress := line :: !progress)
            [ cell ]
        with
        | Ok [ r ] -> r
        | Ok rs -> Alcotest.failf "expected 1 result, got %d" (List.length rs)
        | Error msg -> Alcotest.failf "cold submit failed: %s" msg
      in
      Alcotest.(check bool) "cold result is a run" false cold.Service.r_cached;
      check_scans_identical "cold scan = serial" serial cold.Service.r_scan;
      Alcotest.(check bool) "progress streamed (queued ack at least)" true
        (!progress <> []);
      Alcotest.(check bool) "cold was queued" true
        (List.exists (fun l -> contains l "queued") !progress);
      let warm_progress = ref [] in
      let warm =
        match
          Service.submit ~addr
            ~on_progress:(fun line -> warm_progress := line :: !warm_progress)
            [ cell ]
        with
        | Ok [ r ] -> r
        | Ok rs -> Alcotest.failf "expected 1 result, got %d" (List.length rs)
        | Error msg -> Alcotest.failf "warm submit failed: %s" msg
      in
      Alcotest.(check bool) "warm result is a cache hit" true
        warm.Service.r_cached;
      Alcotest.(check bool) "warm bypassed the queue" true
        (List.exists (fun l -> contains l "cache-hit") !warm_progress);
      check_scans_identical "warm scan = cold scan" cold.Service.r_scan
        warm.Service.r_scan;
      (* Status reflects the published store. *)
      match Service.status ~addr () with
      | Ok line ->
          Alcotest.(check bool) "status names the store" true
            (contains line "cached-cells=1")
      | Error msg -> Alcotest.failf "status failed: %s" msg)

(* Two clients with different campaigns, concurrently: each must get
   its own results (labels and scans), never the other's. *)
let test_two_concurrent_clients () =
  with_daemon (fun ~dir:_ ~addr ->
      let cell_hi = Service.cell_of_spec (Spec.of_golden (Golden.run (Hi.program ()))) in
      (* The second client races us from a fresh process: it submits
         the DFT cell and verifies on its side (see [helper_guard]). *)
      let child = spawn_helper submit_helper_var (Addr.to_string addr) in
      let mine =
        match Service.submit ~addr [ cell_hi ] with
        | Ok [ r ] -> r
        | Ok rs -> Alcotest.failf "expected 1 result, got %d" (List.length rs)
        | Error msg -> Alcotest.failf "parent submit failed: %s" msg
      in
      check_scans_identical "parent got its own scan"
        (Scan.pruned (Golden.run (Hi.program ())))
        mine.Service.r_scan;
      match Unix.waitpid [] child with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED n ->
          Alcotest.failf "concurrent client got wrong results (exit %d)" n
      | _ -> Alcotest.fail "concurrent client died")

(* ------------------------------------------------------------------ *)
(* Shared-secret authentication                                       *)
(* ------------------------------------------------------------------ *)

let test_service_auth () =
  with_temp_dir (fun keydir ->
      let secret_file = Filename.concat keydir "svc.key" in
      let oc = open_out secret_file in
      output_string oc "open sesame\n";
      close_out oc;
      with_daemon ~secret_file (fun ~dir:_ ~addr ->
          let cell = hi_cell () in
          (* No secret: refused, and the error says to bring one. *)
          (match Service.submit ~addr [ cell ] with
          | Ok _ -> Alcotest.fail "unauthenticated submit accepted"
          | Error msg ->
              Alcotest.(check bool)
                (Printf.sprintf "no-secret error is specific: %s" msg)
                true
                (contains msg "no auth tag"));
          (* Wrong secret: a different, mismatch-specific error. *)
          (match Service.submit ~secret:"wrong" ~addr [ cell ] with
          | Ok _ -> Alcotest.fail "wrong-secret submit accepted"
          | Error msg ->
              Alcotest.(check bool)
                (Printf.sprintf "wrong-secret error is specific: %s" msg)
                true
                (contains msg "mismatch"));
          (* Right secret: conducted normally. *)
          match Service.submit ~secret:"open sesame" ~addr [ cell ] with
          | Ok [ r ] ->
              Alcotest.(check bool) "authenticated submit conducted" false
                r.Service.r_cached
          | Ok _ -> Alcotest.fail "unexpected result shape"
          | Error msg -> Alcotest.failf "authenticated submit failed: %s" msg))

let suite =
  ( "service",
    [
      Alcotest.test_case "fairq: FIFO per client, round-robin across" `Quick
        test_fairq_round_robin;
      Alcotest.test_case "fairq: admission window back-pressure" `Quick
        test_fairq_window;
      Alcotest.test_case "wire: submission and result codecs" `Quick
        test_wire_roundtrip;
      Alcotest.test_case "daemon: submit, then cache hit" `Quick
        test_submit_then_cache_hit;
      Alcotest.test_case "daemon: two concurrent clients" `Quick
        test_two_concurrent_clients;
      Alcotest.test_case "daemon: shared-secret auth, distinct errors" `Quick
        test_service_auth;
    ] )
