(* Tests for the susceptibility fuzzer (lib/fuzz): generator validity
   and termination, cross-variant golden-output equivalence of the
   hardening passes, the Mir_text and corpus round-trips, the mining
   loop itself, shrinker soundness, and bit-identical replay of the
   checked-in regression corpus. *)

let seed_rng seed = Prng.create ~seed

(* Small generated programs are a few hundred cycles; anything beyond
   this limit is a termination bug, not a slow program. *)
let golden_limit = 400_000

(* ------------------------------------------------------------------ *)
(* Generator validity gate                                             *)
(* ------------------------------------------------------------------ *)

let qcheck_gen_valid =
  QCheck.Test.make ~name:"generated programs check, assemble, terminate"
    ~count:30 QCheck.int64 (fun seed ->
      let prog = Gen.program (seed_rng seed) in
      (* [Gen.program] runs Check.check_exn itself; re-establish the
         result explicitly so a future refactor can't lose the gate. *)
      (match Check.check prog with
      | Ok () -> ()
      | Error _ -> QCheck.Test.fail_report "Check rejected a generated program");
      let image = Codegen.compile prog in
      match Golden.run ~limit:golden_limit image with
      | golden ->
          golden.Golden.cycles > 0
          && String.length golden.Golden.output > 0
      | exception Golden.Golden_failed (_, _) ->
          QCheck.Test.fail_report "golden run did not halt (Cycle_limit?)")

let test_gen_deterministic () =
  let p1 = Gen.program (seed_rng 42L) in
  let p2 = Gen.program (seed_rng 42L) in
  Alcotest.(check bool) "same seed, same program" true (p1 = p2);
  let p3 = Gen.program (seed_rng 43L) in
  Alcotest.(check bool) "different seed, different program" false (p1 = p3)

(* ------------------------------------------------------------------ *)
(* Differential hardening semantics                                    *)
(* ------------------------------------------------------------------ *)

let qcheck_harden_golden_output =
  QCheck.Test.make
    ~name:"baseline and hardened variants produce identical golden output"
    ~count:15 QCheck.int64 (fun seed ->
      let prog = Gen.program (seed_rng seed) in
      let out image = (Golden.run ~limit:golden_limit image).Golden.output in
      let base = out (Delta.compile_baseline prog) in
      List.for_all
        (fun v -> out (Delta.compile_variant v prog) = base)
        [ Delta.Sum_dmr; Delta.Tmr; Delta.Dft 16 ])

(* ------------------------------------------------------------------ *)
(* Mir_text round-trip                                                 *)
(* ------------------------------------------------------------------ *)

let qcheck_mir_text_roundtrip =
  QCheck.Test.make ~name:"Mir_text round-trips generated programs"
    ~count:30 QCheck.int64 (fun seed ->
      let prog = Gen.program (seed_rng seed) in
      match Mir_text.of_string (Mir_text.to_string prog) with
      | Ok prog' -> prog' = prog
      | Error msg -> QCheck.Test.fail_report msg)

let test_mir_text_kernels () =
  List.iter
    (fun prog ->
      match Mir_text.of_string (Mir_text.to_string prog) with
      | Ok prog' ->
          Alcotest.(check bool)
            (prog.Mir.p_name ^ " round-trips")
            true (prog' = prog)
      | Error msg -> Alcotest.fail msg)
    [
      Flag1.program ();
      Sync2.program ();
      Mbox1.program ();
      Mutex1.program ();
      Bin_sem2.program ();
    ]

let test_mir_text_version_gate () =
  match Mir_text.of_string "mir-v0\n(name \"x\")\n(stack 1)\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stale version accepted"

(* ------------------------------------------------------------------ *)
(* The predicate                                                       *)
(* ------------------------------------------------------------------ *)

let test_coverage_improves_exact () =
  (* Tallies near the 1/3 ratio boundary, where float arithmetic would
     blur the comparison but cross-multiplied integers stay exact. *)
  let t space failures = { Delta.space; failures; histogram = [] } in
  Alcotest.(check bool) "strictly better ratio improves" true
    (Delta.is_dilution ~baseline:(t 3 1) (t 1_000_000 333_333));
  Alcotest.(check bool) "equal ratio is not an improvement" false
    (Delta.is_dilution ~baseline:(t 3 1) (t 3_000_000 1_000_000));
  Alcotest.(check bool) "failures must strictly rise" false
    (Delta.is_dilution ~baseline:(t 100 10) (t 1_000 10))

(* ------------------------------------------------------------------ *)
(* The mining loop: hunt, shrink soundness, corpus round-trip          *)
(* ------------------------------------------------------------------ *)

let stmt_size prog =
  let rec stmts ss =
    List.fold_left
      (fun acc s ->
        acc
        +
        match s with
        | Mir.If (_, t, e) -> 1 + stmts t + stmts e
        | Mir.While (_, b) -> 1 + stmts b
        | _ -> 1)
      0 ss
  in
  List.fold_left (fun acc f -> acc + stmts f.Mir.f_body) 0 prog.Mir.p_funcs

(* One hunt shared by the next three tests (lazy so the suite builds
   fast when filtered). *)
let hunt_result =
  lazy
    (Delta.run ~variants:[ Delta.Dft 16 ] ~shrink_budget:40 ~seed:1007L
       ~budget:2 ())

let test_hunt_finds () =
  let hunt = Lazy.force hunt_result in
  Alcotest.(check bool) "at least one finding" true (hunt.Delta.findings <> []);
  List.iter
    (fun f ->
      Alcotest.(check bool) "predicate holds on stored tallies" true
        (Delta.is_dilution ~baseline:f.Delta.baseline f.Delta.hardened))
    hunt.Delta.findings

let test_shrink_sound () =
  let hunt = Lazy.force hunt_result in
  match hunt.Delta.findings with
  | [] -> Alcotest.fail "hunt found nothing to shrink"
  | f :: _ ->
      (* Delta.run already shrank; shrink again with a fresh budget and
         re-establish every guarantee from scratch. *)
      let shrunk = Delta.shrink ~budget:25 f in
      Alcotest.(check bool) "shrunk program is no larger" true
        (stmt_size shrunk.Delta.program <= stmt_size f.Delta.program);
      Alcotest.(check bool) "predicate preserved" true
        (Delta.is_dilution ~baseline:shrunk.Delta.baseline shrunk.Delta.hardened);
      (* The inversion must replay through a fresh engine run. *)
      (match Delta.verify shrunk with
      | Ok () -> ()
      | Error msg -> Alcotest.fail ("fresh-engine verify failed: " ^ msg))

let test_corpus_roundtrip_and_store () =
  let hunt = Lazy.force hunt_result in
  match hunt.Delta.findings with
  | [] -> Alcotest.fail "hunt found nothing to store"
  | f :: _ -> (
      let entry = Corpus.of_finding f in
      (match Corpus.of_text (Corpus.to_text entry) with
      | Ok entry' ->
          Alcotest.(check bool) "text round-trip" true (entry' = entry)
      | Error msg -> Alcotest.fail msg);
      let dir = Filename.concat (Filename.get_temp_dir_name ()) "fi-fuzz-test-corpus" in
      let path = Corpus.store ~dir entry in
      let path2 = Corpus.store ~dir entry in
      Alcotest.(check string) "store is idempotent" path path2;
      Alcotest.(check bool) "listed" true (List.mem path (Corpus.list ~dir));
      match Corpus.load_file path with
      | Ok loaded ->
          Alcotest.(check bool) "load returns the stored entry" true
            (loaded = entry)
      | Error msg -> Alcotest.fail msg)

(* ------------------------------------------------------------------ *)
(* Checked-in regression corpus                                        *)
(* ------------------------------------------------------------------ *)

let corpus_dir = Filename.concat ".." "corpus"

let test_checked_in_corpus () =
  let paths = Corpus.list ~dir:corpus_dir in
  Alcotest.(check bool) "repo corpus is non-empty" true (paths <> []);
  List.iter
    (fun path ->
      match Corpus.load_file path with
      | Error msg -> Alcotest.fail (path ^ ": " ^ msg)
      | Ok entry -> (
          Alcotest.(check string)
            (path ^ " content address matches")
            (Filename.remove_extension (Filename.basename path))
            (Corpus.key entry);
          match Corpus.verify entry with
          | Ok () -> ()
          | Error msg -> Alcotest.fail (path ^ ": " ^ msg)))
    paths

let suite =
  ( "fuzz",
    [
      QCheck_alcotest.to_alcotest qcheck_gen_valid;
      Alcotest.test_case "gen: deterministic" `Quick test_gen_deterministic;
      QCheck_alcotest.to_alcotest qcheck_harden_golden_output;
      QCheck_alcotest.to_alcotest qcheck_mir_text_roundtrip;
      Alcotest.test_case "mir_text: kernels round-trip" `Quick
        test_mir_text_kernels;
      Alcotest.test_case "mir_text: version gate" `Quick
        test_mir_text_version_gate;
      Alcotest.test_case "predicate: exact integers" `Quick
        test_coverage_improves_exact;
      Alcotest.test_case "hunt: finds dilution cells" `Slow test_hunt_finds;
      Alcotest.test_case "shrink: sound" `Slow test_shrink_sound;
      Alcotest.test_case "corpus: round-trip + store" `Slow
        test_corpus_roundtrip_and_store;
      Alcotest.test_case "corpus: checked-in entries replay" `Slow
        test_checked_in_corpus;
    ] )
