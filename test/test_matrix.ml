(* Tests for the campaign-spec API (lib/engine Spec/Catalog + the matrix
   scheduler): weighted shard sizing, register-space campaigns through
   the engine (bit-identical to Regspace.scan for any worker count),
   fingerprint separation of spaces and sizing policies, journal
   catalogue lookup, cross-space resume rejection, and matrix runs where
   only some cells have journals. *)

(* ------------------------------------------------------------------ *)
(* Fixtures and helpers                                               *)
(* ------------------------------------------------------------------ *)

let hi_golden = lazy (Golden.run (Hi.program ()))
let hi_serial = lazy (Scan.pruned (Lazy.force hi_golden))
let hi_regspace = lazy (Regspace.analyze (Hi.program ()))
let hi_reg_serial = lazy (Regspace.scan (Lazy.force hi_regspace))
let flag1_golden = lazy (Golden.run (Flag1.baseline ()))
let flag1_serial = lazy (Scan.pruned (Lazy.force flag1_golden))

let check_scans_identical msg serial parallel =
  Alcotest.(check bool) (msg ^ " (structural)") true (serial = parallel);
  Alcotest.(check string)
    (msg ^ " (serialised)")
    (Csv_io.to_string serial)
    (Csv_io.to_string parallel)

let with_temp_file f =
  let path = Filename.temp_file "fimatrix" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let with_temp_dir f =
  let dir = Filename.temp_file "fimatrix" ".catalogue" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun name -> Sys.remove (Filename.concat dir name))
           (Sys.readdir dir)
       with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let truncate_journal_to path ~records =
  (* Keep the header plus [records] records, then simulate a torn tail. *)
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let lines = String.split_on_char '\n' text in
  let kept = List.filteri (fun i _ -> i <= records) lines in
  let oc = open_out_bin path in
  List.iter (fun l -> output_string oc (l ^ "\n")) kept;
  output_string oc "f00dfeed torn-shard-rec";
  close_out oc

(* ------------------------------------------------------------------ *)
(* Weighted shard sizing                                              *)
(* ------------------------------------------------------------------ *)

let test_weighted_plan_invariants () =
  let classes =
    Defuse.experiment_classes (Lazy.force flag1_golden).Golden.defuse
  in
  let total = Array.length classes in
  List.iter
    (fun shard_size ->
      let plan = Shard.plan ~shard_size ~weighted:true classes in
      Alcotest.(check int) "covers all classes" total plan.Shard.classes_total;
      Alcotest.(check bool) "records the sizing" true
        (plan.Shard.sizing = Shard.By_weight);
      let seen = Array.make total false in
      Array.iter (fun i -> seen.(i) <- true) plan.Shard.order;
      Alcotest.(check bool) "order is a permutation" true
        (Array.for_all Fun.id seen);
      let covered = ref 0 in
      Array.iteri
        (fun i (s : Shard.t) ->
          Alcotest.(check int) "dense ids" i s.Shard.id;
          Alcotest.(check int) "contiguous" !covered s.Shard.lo;
          Alcotest.(check bool) "non-empty" true (Shard.classes_in s > 0);
          covered := s.Shard.hi;
          (* the checkpoint invariant survives weighting *)
          for rank = s.Shard.lo + 1 to s.Shard.hi - 1 do
            let t_end r = classes.(plan.Shard.order.(r)).Defuse.t_end in
            if t_end rank < t_end (rank - 1) then
              Alcotest.failf "shard %d: t_end decreases at rank %d" i rank
          done)
        plan.Shard.shards;
      Alcotest.(check int) "all ranks covered" total !covered)
    [ 1; 7; 100_000 ];
  Alcotest.(check string) "sizing tags" "count,weight"
    (Shard.sizing_tag Shard.By_count ^ "," ^ Shard.sizing_tag Shard.By_weight)

let test_weighted_engine_equals_serial () =
  let golden = Lazy.force hi_golden in
  let policy = Spec.make_policy ~weighted:true () in
  check_scans_identical "hi weighted shards"
    (Lazy.force hi_serial)
    (Engine.run_spec ~jobs:2 (Spec.of_golden ~policy golden))

(* ------------------------------------------------------------------ *)
(* Fingerprints: space and sizing are part of the identity            *)
(* ------------------------------------------------------------------ *)

let test_fingerprints_distinguish () =
  let golden = Lazy.force hi_golden in
  let mem = Spec.of_golden golden in
  let reg = Spec.of_regspace (Lazy.force hi_regspace) in
  let weighted =
    Spec.of_golden ~policy:(Spec.make_policy ~weighted:true ()) golden
  in
  let fp_mem = Engine.fingerprint_spec mem in
  Alcotest.(check bool) "mem <> reg" true
    (fp_mem <> Engine.fingerprint_spec reg);
  Alcotest.(check bool) "count <> weight" true
    (fp_mem <> Engine.fingerprint_spec weighted);
  Alcotest.(check bool) "stable" true (fp_mem = Engine.fingerprint_spec mem)

(* ------------------------------------------------------------------ *)
(* Register campaigns through the engine                              *)
(* ------------------------------------------------------------------ *)

let test_register_engine_equals_scan () =
  let r = Lazy.force hi_regspace in
  let serial = Lazy.force hi_reg_serial in
  List.iter
    (fun jobs ->
      check_scans_identical
        (Printf.sprintf "hi registers -j %d" jobs)
        serial
        (Engine.run_spec ~jobs (Spec.of_regspace r)))
    [ 1; 2; 4 ]

(* Register engine == Regspace.scan on random compiled MIR programs with
   random shard geometry and worker counts. *)
let qcheck_register_engine_equals_scan =
  QCheck.Test.make ~name:"register engine equals Regspace.scan on random programs"
    ~count:4
    QCheck.(triple (int_bound 1000) (int_range 1 4) (int_range 1 9))
    (fun (seed, jobs, shard_size) ->
      let open Builder in
      let k = 1 + (seed mod 5) in
      let source =
        prog
          ~name:(Printf.sprintf "rrand%d" seed)
          [ global "acc" ~init:[ seed mod 7 ]; array "buf" 3 ~init:[ 1; 2; 3 ] ]
          [
            func "main" ~locals:[ "i" ]
              (for_ "i" ~from:(i 0) ~below:(i k)
                 [
                   setg "acc" (g "acc" +: elem "buf" (l "i" %: i 3));
                   set_elem "buf" (l "i" %: i 3) (g "acc" ^: i seed);
                 ]
              @ [ out (g "acc" &: i 255); ret_unit ]);
          ]
      in
      let r = Regspace.analyze (Codegen.compile source) in
      let policy = Spec.make_policy ~shard_size () in
      Regspace.scan r = Engine.run_spec ~jobs (Spec.of_regspace ~policy r))

let test_register_journal_resume () =
  let r = Lazy.force hi_regspace in
  let serial = Lazy.force hi_reg_serial in
  with_temp_file (fun path ->
      let policy = Spec.make_policy ~shard_size:4 ~journal:path () in
      let full = Engine.run_spec ~jobs:2 (Spec.of_regspace ~policy r) in
      check_scans_identical "journaled register run" serial full;
      let total_shards =
        match Journal.load path with
        | Some (_, records) -> List.length records
        | None -> Alcotest.fail "journal unreadable"
      in
      Alcotest.(check bool) "has shards" true (total_shards > 2);
      truncate_journal_to path ~records:(total_shards / 2);
      let snap = ref None in
      let resumed =
        Engine.run_spec ~jobs:2
          ~observe:(fun s -> snap := Some s)
          (Spec.of_regspace
             ~policy:
               { policy with
                 Spec.durability =
                   { policy.Spec.durability with Spec.resume = true };
               }
             r)
      in
      check_scans_identical "resumed = uninterrupted" serial resumed;
      match !snap with
      | None -> Alcotest.fail "observe never called"
      | Some s ->
          Alcotest.(check bool) "recovered shards" true
            (s.Progress.resumed_classes > 0);
          Alcotest.(check int) "completed everything" s.Progress.classes_total
            s.Progress.classes_done)

let test_cross_space_resume_rejected () =
  let golden = Lazy.force hi_golden in
  let r = Lazy.force hi_regspace in
  with_temp_file (fun path ->
      (* Memory journal, register resume. *)
      ignore (Engine.run ~jobs:1 ~journal:path golden);
      let reg_resume =
        Spec.of_regspace
          ~policy:(Spec.make_policy ~journal:path ~resume:true ())
          r
      in
      (match Engine.run_spec ~jobs:1 reg_resume with
      | _ -> Alcotest.fail "register resume accepted a memory journal"
      | exception Engine.Journal_mismatch _ -> ());
      (* Register journal, memory resume. *)
      ignore
        (Engine.run_spec ~jobs:1
           (Spec.of_regspace
              ~policy:(Spec.make_policy ~journal:path ())
              r));
      let mem_resume =
        Spec.of_golden
          ~policy:(Spec.make_policy ~journal:path ~resume:true ())
          golden
      in
      match Engine.run_spec ~jobs:1 mem_resume with
      | _ -> Alcotest.fail "memory resume accepted a register journal"
      | exception Engine.Journal_mismatch _ -> ())

(* ------------------------------------------------------------------ *)
(* The matrix scheduler                                               *)
(* ------------------------------------------------------------------ *)

let test_matrix_small_cells () =
  (* Memory and register cells of different programs through one pool,
     for several worker counts; every cell bit-identical to its serial
     conductor, results in spec order. *)
  let specs () =
    [ Spec.of_golden (Lazy.force flag1_golden);
      Spec.of_regspace (Lazy.force hi_regspace);
      Spec.of_golden (Lazy.force hi_golden) ]
  in
  List.iter
    (fun jobs ->
      match Engine.run_matrix ~jobs (specs ()) with
      | [ flag1; hi_reg; hi_mem ] ->
          check_scans_identical
            (Printf.sprintf "flag1 cell -j %d" jobs)
            (Lazy.force flag1_serial) flag1;
          check_scans_identical
            (Printf.sprintf "hi register cell -j %d" jobs)
            (Lazy.force hi_reg_serial) hi_reg;
          check_scans_identical
            (Printf.sprintf "hi memory cell -j %d" jobs)
            (Lazy.force hi_serial) hi_mem
      | _ -> Alcotest.fail "wrong cell count")
    [ 1; 2; 4 ]

let test_matrix_aggregate_progress () =
  let specs =
    [ Spec.of_golden (Lazy.force hi_golden);
      Spec.of_regspace (Lazy.force hi_regspace) ]
  in
  let seen = ref [] in
  let final = ref None in
  let scans =
    Engine.run_matrix ~jobs:2
      ~progress:(fun spec ->
        seen := Spec.label spec :: !seen;
        Scan.no_progress)
      ~observe:(fun s -> final := Some s)
      specs
  in
  Alcotest.(check (list string))
    "per-cell progress factory sees every spec" [ "hi/baseline"; "hi/baseline@registers" ]
    (List.rev !seen);
  let cell_classes scan = Array.length scan.Scan.experiments / 8 in
  match !final with
  | None -> Alcotest.fail "observe never called"
  | Some s ->
      Alcotest.(check bool) "finished" true (Progress.finished s);
      Alcotest.(check int) "aggregate classes across the matrix"
        (List.fold_left (fun n scan -> n + cell_classes scan) 0 scans)
        s.Progress.classes_total;
      Alcotest.(check int) "all shards done" s.Progress.shards_total
        s.Progress.shards_done

let test_matrix_partial_journals () =
  (* Only the first cell journals; a torn journal resumes that cell while
     the other cell re-runs from scratch — both end bit-identical. *)
  with_temp_file (fun path ->
      let journaled resume =
        Spec.of_golden
          ~policy:(Spec.make_policy ~shard_size:1 ~journal:path ~resume ())
          (Lazy.force flag1_golden)
      in
      let bare = Spec.of_golden (Lazy.force hi_golden) in
      (match Engine.run_matrix ~jobs:2 [ journaled false; bare ] with
      | [ flag1; hi ] ->
          check_scans_identical "journaled cell" (Lazy.force flag1_serial) flag1;
          check_scans_identical "bare cell" (Lazy.force hi_serial) hi
      | _ -> Alcotest.fail "wrong cell count");
      let total_shards =
        match Journal.load path with
        | Some (_, records) -> List.length records
        | None -> Alcotest.fail "journal unreadable"
      in
      truncate_journal_to path ~records:(total_shards / 2);
      let final = ref None in
      match
        Engine.run_matrix ~jobs:2
          ~observe:(fun s -> final := Some s)
          [ journaled true; bare ]
      with
      | [ flag1; hi ] -> (
          check_scans_identical "resumed cell" (Lazy.force flag1_serial) flag1;
          check_scans_identical "unjournaled cell" (Lazy.force hi_serial) hi;
          match !final with
          | None -> Alcotest.fail "observe never called"
          | Some s ->
              Alcotest.(check bool) "recovered the journaled cell's shards"
                true
                (s.Progress.resumed_classes > 0
                && s.Progress.resumed_classes < s.Progress.classes_total))
      | _ -> Alcotest.fail "wrong cell count")

(* ------------------------------------------------------------------ *)
(* Journal catalogue                                                  *)
(* ------------------------------------------------------------------ *)

let test_catalogue_roundtrip () =
  with_temp_dir (fun dir ->
      Alcotest.(check (option string)) "empty" None
        (Catalog.lookup ~dir ~fingerprint:0xdeadbeef);
      Catalog.record ~dir ~fingerprint:0xdeadbeef ~path:"a.journal";
      Catalog.record ~dir ~fingerprint:0x12345678 ~path:"b.journal";
      Catalog.record ~dir ~fingerprint:0xdeadbeef ~path:"c.journal";
      Alcotest.(check (option string)) "last entry wins" (Some "c.journal")
        (Catalog.lookup ~dir ~fingerprint:0xdeadbeef);
      Alcotest.(check (option string)) "other key intact" (Some "b.journal")
        (Catalog.lookup ~dir ~fingerprint:0x12345678);
      (* Re-recording the current mapping appends nothing. *)
      Catalog.record ~dir ~fingerprint:0x12345678 ~path:"b.journal";
      let lines =
        let ic = open_in (Catalog.index_path ~dir) in
        let n = ref 0 in
        (try
           while true do
             ignore (input_line ic);
             incr n
           done
         with End_of_file -> ());
        close_in ic;
        !n
      in
      Alcotest.(check int) "no duplicate index lines" 3 lines)

let test_catalogue_resume_by_fingerprint () =
  with_temp_dir (fun dir ->
      let spec resume =
        Spec.of_golden
          ~policy:(Spec.make_policy ~catalogue:dir ~resume ())
          (Lazy.force hi_golden)
      in
      let first = Engine.run_spec ~jobs:2 (spec false) in
      check_scans_identical "catalogued run" (Lazy.force hi_serial) first;
      let fp = Engine.fingerprint_spec (spec false) in
      (match Catalog.lookup ~dir ~fingerprint:fp with
      | None -> Alcotest.fail "journal not catalogued"
      | Some path ->
          Alcotest.(check bool) "catalogued journal exists" true
            (Sys.file_exists path));
      (* --resume with no explicit path: found by fingerprint, nothing
         re-conducted. *)
      let snap = ref None in
      let resumed =
        Engine.run_spec ~jobs:2 ~observe:(fun s -> snap := Some s) (spec true)
      in
      check_scans_identical "resumed from catalogue" (Lazy.force hi_serial)
        resumed;
      match !snap with
      | None -> Alcotest.fail "observe never called"
      | Some s ->
          Alcotest.(check int) "zero conducted on complete journal"
            s.Progress.classes_total s.Progress.resumed_classes)

let test_resume_needs_journal_or_catalogue () =
  let spec =
    Spec.of_golden
      ~policy:(Spec.make_policy ~resume:true ())
      (Lazy.force hi_golden)
  in
  Alcotest.check_raises "resume without journal or catalogue"
    (Invalid_argument "Engine.run: ~resume requires ~journal") (fun () ->
      ignore (Engine.run_spec spec))

(* ------------------------------------------------------------------ *)
(* The paper matrix                                                   *)
(* ------------------------------------------------------------------ *)

let test_paper_matrix_equals_serial () =
  (* The acceptance bar: every cell of the Figure-2 matrix through one
     shared pool is structurally equal to its serial conductor. *)
  let serial =
    List.concat_map
      (fun (_, baseline, hardened) ->
        [ Scan.pruned (Golden.run (baseline ()));
          Scan.pruned ~variant:"sum+dmr" (Golden.run (hardened ())) ])
      Suite.paper_pairs
  in
  let scans = Engine.run_matrix ~jobs:2 (Suite.paper_specs ()) in
  List.iteri
    (fun i (expected, got) ->
      check_scans_identical
        (Printf.sprintf "paper cell %d (%s/%s)" i got.Scan.name
           got.Scan.variant)
        expected got)
    (List.combine serial scans)

let suite =
  ( "matrix",
    [
      Alcotest.test_case "weighted plan invariants" `Quick
        test_weighted_plan_invariants;
      Alcotest.test_case "weighted engine = serial" `Quick
        test_weighted_engine_equals_serial;
      Alcotest.test_case "fingerprints distinguish space and sizing" `Quick
        test_fingerprints_distinguish;
      Alcotest.test_case "register engine = Regspace.scan (hi, j 1/2/4)"
        `Quick test_register_engine_equals_scan;
      QCheck_alcotest.to_alcotest qcheck_register_engine_equals_scan;
      Alcotest.test_case "register journal torn-tail resume" `Quick
        test_register_journal_resume;
      Alcotest.test_case "cross-space resume rejected" `Quick
        test_cross_space_resume_rejected;
      Alcotest.test_case "matrix = serial cells (j 1/2/4)" `Slow
        test_matrix_small_cells;
      Alcotest.test_case "matrix aggregate progress" `Quick
        test_matrix_aggregate_progress;
      Alcotest.test_case "matrix partial journal resume" `Slow
        test_matrix_partial_journals;
      Alcotest.test_case "catalogue roundtrip" `Quick test_catalogue_roundtrip;
      Alcotest.test_case "catalogue resume by fingerprint" `Quick
        test_catalogue_resume_by_fingerprint;
      Alcotest.test_case "resume requires journal or catalogue" `Quick
        test_resume_needs_journal_or_catalogue;
      Alcotest.test_case "paper matrix = serial cells" `Slow
        test_paper_matrix_equals_serial;
    ] )
